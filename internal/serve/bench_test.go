package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parclust/internal/baselines"
	"parclust/internal/instance"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/seq"
	"parclust/internal/workload"
)

func loadedService(b *testing.B, n int) (*Service, []metric.Point) {
	b.Helper()
	r := rng.New(17)
	pts := workload.GaussianMixture(r, n, 4, 5, 10, 0.5)
	s := New(Config{Space: metric.L2{}, K: 5, Shards: 4, StalenessOps: 1 << 30, Seed: 17})
	b.Cleanup(s.Close)
	for i, p := range pts {
		s.Insert(i, p)
	}
	s.Resolve()
	if s.Err() != nil {
		b.Fatal(s.Err())
	}
	return s, pts
}

// BenchmarkServeCachedQuery prices the cached-answer path: one atomic
// load plus a ≤k-center scan. The acceptance bar is ≥10x cheaper than
// re-solving per query (BenchmarkServeResolvePerQuery); BENCH_pr10.json
// records the measured gap.
func BenchmarkServeCachedQuery(b *testing.B) {
	s, pts := loadedService(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := s.Assign(pts[i%len(pts)])
		if a.Center < 0 {
			b.Fatal("no center")
		}
	}
}

// BenchmarkServeResolvePerQuery is the strawman the cache replaces:
// re-solve the coreset before every answer.
func BenchmarkServeResolvePerQuery(b *testing.B) {
	s, pts := loadedService(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Resolve()
		a := s.Assign(pts[i%len(pts)])
		if a.Center < 0 {
			b.Fatal("no center")
		}
	}
}

// BenchmarkServeMixedLoad measures sustained queries/sec under a mixed
// read/write load: 4 reader goroutines issue assignment queries while a
// writer streams inserts and deletes at ~10% of the query volume,
// with async re-solves triggering on staleness throughout. Reported
// metrics: qps (queries completed per wall second) and solves.
func BenchmarkServeMixedLoad(b *testing.B) {
	r := rng.New(23)
	pts := workload.GaussianMixture(r, 4000, 4, 5, 10, 0.5)
	s := New(Config{
		Space: metric.L2{}, K: 5, Shards: 4, StalenessOps: 128,
		Deadline: 100 * time.Millisecond, Seed: 23,
	})
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Insert(i, pts[i])
	}
	s.Resolve()

	var queries atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: ~inserts+deletes until readers finish
		defer wg.Done()
		i := 1000
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Insert(i%len(pts), pts[i%len(pts)])
			if i%2 == 0 {
				s.Delete((i - 500) % len(pts))
			}
			i++
			// Keep writes at roughly a tenth of read volume.
			for pause := 0; pause < 9; pause++ {
				if queries.Load() > int64(i*10) {
					break
				}
				time.Sleep(10 * time.Microsecond)
			}
		}
	}()

	start := time.Now()
	b.ResetTimer()
	var rwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		rwg.Add(1)
		go func(g int) {
			defer rwg.Done()
			for i := g; i < b.N; i += 4 {
				s.Assign(pts[i%len(pts)])
				queries.Add(1)
			}
		}(g)
	}
	rwg.Wait()
	elapsed := time.Since(start)
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(queries.Load())/elapsed.Seconds(), "qps")
	b.ReportMetric(float64(s.Stats().Solves), "solves")
	if s.Err() != nil {
		b.Fatal(s.Err())
	}
}

// BenchmarkServeHeadToHead compares the serving pipeline (streaming
// coreset + ladder re-solve) against the Aghamolaei–Ghodsi composable
// baseline on the same live set and sharding: approximation factor
// (measured radius / exact lower bound) and coordinator traffic words.
// Reported metrics feed BENCH_pr10.json.
func BenchmarkServeHeadToHead(b *testing.B) {
	r := rng.New(29)
	pts := workload.GaussianMixture(r, 1500, 3, 5, 12, 0.5)
	k, shards := 5, 4
	lb := seq.KCenterLowerBound(metric.L2{}, pts, k)

	s := New(Config{Space: metric.L2{}, K: k, Shards: shards, StalenessOps: 1 << 30, Seed: 29})
	defer s.Close()
	parts := make([][]metric.Point, shards)
	for i, p := range pts {
		s.Insert(i, p)
		sh := s.shardFor(i)
		parts[sh] = append(parts[sh], p)
	}

	var serveRadius, serveWords, agRadius, agWords float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := s.Resolve()
		if s.Err() != nil {
			b.Fatal(s.Err())
		}
		serveRadius = metric.Radius(metric.L2{}, pts, sol.Centers)
		serveWords = float64(sol.CoordWords)

		in := instance.New(metric.L2{}, parts)
		c := mpc.NewCluster(shards, uint64(29+i))
		res, err := baselines.AghamolaeiGhodsiKCenter(c, in, k)
		if err != nil {
			b.Fatal(err)
		}
		agRadius = res.Radius
		agWords = float64(c.Stats().TotalWords)
	}
	b.StopTimer()
	b.ReportMetric(serveRadius/lb, "serve-factor")
	b.ReportMetric(agRadius/lb, "ag-factor")
	b.ReportMetric(serveWords, "serve-words")
	b.ReportMetric(agWords, "ag-words")
}

// TestCachedQueryTenTimesCheaper pins the acceptance bar in CI with a
// coarse in-process measurement (the benchmarks give the precise gap):
// answering from the cache must be at least 10x cheaper than re-solving
// the coreset per query.
func TestCachedQueryTenTimesCheaper(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	r := rng.New(31)
	pts := workload.GaussianMixture(r, 1000, 3, 5, 10, 0.5)
	s := New(Config{Space: metric.L2{}, K: 5, Shards: 4, StalenessOps: 1 << 30, Seed: 31})
	defer s.Close()
	for i, p := range pts {
		s.Insert(i, p)
	}
	s.Resolve()

	const q = 50
	start := time.Now()
	for i := 0; i < q; i++ {
		s.Assign(pts[i])
	}
	cached := time.Since(start)

	start = time.Now()
	for i := 0; i < q; i++ {
		s.Resolve()
		s.Assign(pts[i])
	}
	resolved := time.Since(start)

	if resolved < 10*cached {
		t.Fatalf("cached path only %.1fx cheaper (cached %v, re-solve %v), want >= 10x",
			float64(resolved)/float64(cached), cached, resolved)
	}
}
