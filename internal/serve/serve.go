// Package serve is the long-lived clustering service on top of the
// batch solvers: it ingests inserts and deletes, maintains a decayed
// streaming coreset per shard (internal/streaming's doubling sketch,
// rebuilt when deletions accumulate), and answers assignment, radius
// and diversity queries from a cached immutable Solution — re-solving
// only the coreset, and only when it has drifted beyond a staleness
// threshold, instead of re-clustering the world on every query.
//
// The contract (docs/SERVING.md):
//
//   - Mutations are cheap: an Insert or Delete touches one shard's
//     sketch — O(k) distance evaluations amortized — never the solver.
//   - Queries are cheaper: they read one atomic pointer and scan the
//     ≤ k cached centers, with no locks shared with writers, and always
//     reflect exactly the last completed re-solve (never a torn or
//     partially updated one). Every answer carries explicit Staleness
//     metadata: which solve it came from, how many mutations it is
//     behind, and whether a fresher solve is in flight.
//   - Re-solves are rare and bounded: triggered after StalenessOps
//     mutations, they snapshot the per-shard coresets (m·(k+1) points,
//     not n) and run the paper's ladder solver over an MPC cluster of
//     m machines. Concurrent services bid for the shared sched.Pool
//     with per-request deadlines (sched.Bid, earliest deadline first)
//     instead of racing FCFS TryAcquire.
//
// Radius semantics: Solution.CoresetRadius is measured over the
// snapshot coreset; Solution.RadiusBound adds the streaming slack
// (max shard 8·r), so every point summarized at snapshot time is
// certified within RadiusBound of some center. Points inserted after
// the snapshot are not covered by the bound — that is what
// Staleness.OpsBehind quantifies.
package serve

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"parclust/internal/diversity"
	"parclust/internal/instance"
	"parclust/internal/kcenter"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/sched"
)

// Config parameterizes a Service. Zero fields default as documented.
type Config struct {
	// Space is the metric; required.
	Space metric.Space
	// K is the number of centers (and diversity subset size); required.
	K int
	// Eps is the solver's ladder resolution. Defaults to 0.1.
	Eps float64
	// Shards is the number of ingest shards — and the machine count of
	// the MPC cluster each re-solve runs on. Defaults to 4.
	Shards int
	// StalenessOps is how many mutations the cached solution may fall
	// behind before a re-solve is triggered. Defaults to 64.
	StalenessOps int
	// Window, when positive, keeps only the last Window inserts live: an
	// insert beyond the window deletes the oldest live insert. Ids must
	// be unique across inserts in window mode. 0 keeps everything until
	// explicitly deleted.
	Window int
	// RebuildFraction is the decayed fraction of a shard's sketch that
	// forces a rebuild (see shard.maybeRebuild). Defaults to 0.5.
	RebuildFraction float64
	// Seed seeds each re-solve's cluster; solve seq is mixed in so
	// repeated re-solves do not reuse randomness.
	Seed uint64
	// Deadline, when positive, gives each re-solve a per-request
	// deadline of now+Deadline and makes it bid for the speculation
	// pool EDF-style (sched.Scheduler.WithDeadline): while a
	// tighter-deadline re-solve is live anywhere on the shared pool,
	// this service's solves run unspeculated width-1 waves instead of
	// racing it for tokens. Implies Speculation = sched.Adaptive.
	Deadline time.Duration
	// Sched is the scheduler the deadline views are minted from.
	// Defaults to sched.Default(). Ignored when Deadline is 0 and
	// Speculation != sched.Adaptive.
	Sched *sched.Scheduler
	// Speculation is passed to the solvers (see kcenter.Config).
	// Defaults to 0 (sequential); Deadline > 0 overrides to Adaptive.
	Speculation int
	// Diversity additionally maintains a k-diverse subset per solve.
	Diversity bool
	// OnSolve, when set, is called synchronously with each installed
	// Solution, after installation, from the solving goroutine. Parity
	// tests use it to record the exact solutions queries may observe.
	OnSolve func(*Solution)
}

func (c Config) withDefaults() Config {
	if c.Eps <= 0 {
		c.Eps = 0.1
	}
	if c.Shards < 1 {
		c.Shards = 4
	}
	if c.StalenessOps < 1 {
		c.StalenessOps = 64
	}
	if c.RebuildFraction <= 0 || c.RebuildFraction >= 1 {
		c.RebuildFraction = 0.5
	}
	if c.Sched == nil {
		c.Sched = sched.Default()
	}
	if c.Deadline > 0 {
		c.Speculation = sched.Adaptive
	}
	return c
}

// Solution is one completed re-solve. Immutable after installation:
// queries that loaded the same Seq computed against byte-identical
// state.
type Solution struct {
	// Seq numbers completed solves from 1; 0 never escapes.
	Seq uint64
	// Ops is the service mutation count at snapshot time; staleness of
	// a later query is ops(now) - Ops.
	Ops int64
	// Centers is the k-center solution over the snapshot coreset.
	Centers []metric.Point
	// CoresetRadius is the measured covering radius over the coreset;
	// RadiusBound adds CoresetSlack, certifying coverage of everything
	// summarized at snapshot time.
	CoresetRadius float64
	RadiusBound   float64
	// CoresetSlack is the max shard streaming slack (8·r) folded into
	// RadiusBound.
	CoresetSlack float64
	// CoresetSize is the snapshot coreset's point count; Live the live
	// point count at snapshot.
	CoresetSize int
	Live        int
	// Diverse/Diversity carry the k-diverse subset when
	// Config.Diversity is set (Diversity is +Inf for < 2 points).
	Diverse   []metric.Point
	Diversity float64
	// SolveNanos is the wall time of the solve; CoordWords the total
	// MPC communication volume (mpc.Stats.TotalWords, both solvers).
	SolveNanos int64
	CoordWords int64
}

// Staleness is the freshness metadata attached to every answer.
type Staleness struct {
	// Seq is the solution the answer was computed from (0: no solve has
	// completed yet and the answer is vacuous).
	Seq uint64
	// OpsBehind is how many mutations the service has accepted since
	// that solution's snapshot.
	OpsBehind int64
	// Resolving reports whether a fresher solve was in flight when the
	// answer was produced.
	Resolving bool
}

// Assignment is the answer to an Assign query.
type Assignment struct {
	// Center indexes Solution.Centers (-1 when the solution has none).
	Center int
	// Dist is the distance to that center (+Inf when none — the same
	// empty-set convention as metric.DistToSet).
	Dist      float64
	Staleness Staleness
}

// Stats is a point-in-time operational snapshot.
type Stats struct {
	Ops      int64 // mutations accepted
	Live     int   // live points across shards
	Solves   uint64
	Rebuilds int // sketch rebuilds across shards
}

// Service is the long-lived clustering service. All methods are safe
// for concurrent use; Close must not race mutations from the caller's
// own goroutine (it waits for in-flight solves, not for the caller).
type Service struct {
	cfg Config

	shards   []*shard
	shardMu  []sync.Mutex
	winMu    sync.Mutex
	win      []int
	ops      atomic.Int64
	seq      atomic.Uint64
	sol      atomic.Pointer[Solution]
	solveMu  sync.Mutex // serializes resolveOnce
	pending  atomic.Bool
	spawnMu  sync.Mutex
	closed   bool
	wg       sync.WaitGroup
	errMu    sync.Mutex
	lastErr  error
	resolves atomic.Uint64 // live async resolve loops, for Staleness.Resolving
}

// New builds a Service. Panics on a missing Space or K < 1 — these are
// programming errors, not runtime conditions.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	if cfg.Space == nil || cfg.K < 1 {
		panic("serve: Config.Space and Config.K are required")
	}
	s := &Service{cfg: cfg}
	s.shards = make([]*shard, cfg.Shards)
	s.shardMu = make([]sync.Mutex, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(cfg.Space, cfg.K, cfg.RebuildFraction)
	}
	return s
}

func (s *Service) shardFor(id int) int {
	return int(uint(id) % uint(len(s.shards)))
}

// Insert adds (or replaces) point id. The point is copied, so the
// caller may reuse the backing slice.
func (s *Service) Insert(id int, p metric.Point) {
	q := p.Clone()
	i := s.shardFor(id)
	s.shardMu[i].Lock()
	s.shards[i].insert(id, q)
	s.shardMu[i].Unlock()
	if s.cfg.Window > 0 {
		s.evictBeyondWindow(id)
	}
	s.noteMutation()
}

// evictBeyondWindow appends id to the insert FIFO and deletes the
// oldest inserts once the window overflows (their deletions count as
// mutations like any other).
func (s *Service) evictBeyondWindow(id int) {
	var evict []int
	s.winMu.Lock()
	s.win = append(s.win, id)
	for len(s.win) > s.cfg.Window {
		evict = append(evict, s.win[0])
		s.win = s.win[1:]
	}
	s.winMu.Unlock()
	for _, old := range evict {
		s.Delete(old)
	}
}

// Delete removes point id, reporting whether it was live. The point
// decays out of its shard's sketch (see shard).
func (s *Service) Delete(id int) bool {
	i := s.shardFor(id)
	s.shardMu[i].Lock()
	ok := s.shards[i].remove(id)
	s.shardMu[i].Unlock()
	if ok {
		s.noteMutation()
	}
	return ok
}

// noteMutation bumps the op counter and spawns an async re-solve loop
// if the cached solution has fallen StalenessOps behind and no loop is
// already running.
func (s *Service) noteMutation() {
	s.ops.Add(1)
	if !s.stale() || !s.pending.CompareAndSwap(false, true) {
		return
	}
	s.spawnMu.Lock()
	if s.closed {
		s.pending.Store(false)
		s.spawnMu.Unlock()
		return
	}
	s.wg.Add(1)
	s.spawnMu.Unlock()
	go s.resolveLoop()
}

// stale reports whether the cached solution is at least StalenessOps
// mutations behind (a never-solved service is stale as soon as it has
// that many ops).
func (s *Service) stale() bool {
	var at int64
	if sol := s.sol.Load(); sol != nil {
		at = sol.Ops
	}
	return s.ops.Load()-at >= int64(s.cfg.StalenessOps)
}

// resolveLoop re-solves until the service is no longer stale. The
// pending flag is dropped before the final staleness check so a
// mutation landing in the gap re-spawns rather than being lost.
func (s *Service) resolveLoop() {
	defer s.wg.Done()
	s.resolves.Add(1)
	defer func() { s.resolves.Add(^uint64(0)) }()
	for {
		ok := s.resolveOnce()
		s.pending.Store(false)
		// A failed solve leaves the service stale; bail instead of
		// hot-looping — the next mutation retriggers.
		if !ok || !s.stale() || !s.pending.CompareAndSwap(false, true) {
			return
		}
	}
}

// Resolve runs one synchronous re-solve and returns the installed
// solution (or the previous one if the solve failed — check Err).
// Benchmarks and tests use it for deterministic sequencing.
func (s *Service) Resolve() *Solution {
	s.resolveOnce()
	return s.sol.Load()
}

// resolveOnce snapshots the shard coresets and solves them, reporting
// whether a solution was installed. Serialized by solveMu: concurrent
// triggers queue rather than duplicate work.
func (s *Service) resolveOnce() bool {
	s.solveMu.Lock()
	defer s.solveMu.Unlock()

	start := time.Now()
	opsAt := s.ops.Load()
	parts := make([][]metric.Point, len(s.shards))
	slack := 0.0
	live, csize := 0, 0
	for i, sh := range s.shards {
		s.shardMu[i].Lock()
		centers, sl := sh.summary()
		live += len(sh.live)
		s.shardMu[i].Unlock()
		parts[i] = centers
		csize += len(centers)
		if sl > slack {
			slack = sl
		}
	}

	seq := s.seq.Add(1)
	sol := &Solution{Seq: seq, Ops: opsAt, Live: live, CoresetSize: csize, CoresetSlack: slack}
	if csize > 0 {
		if err := s.solveSnapshot(parts, slack, sol); err != nil {
			s.seq.Add(^uint64(0)) // failed solves do not consume a seq
			s.errMu.Lock()
			s.lastErr = fmt.Errorf("serve: solve %d: %w", seq, err)
			s.errMu.Unlock()
			return false
		}
	}
	sol.SolveNanos = time.Since(start).Nanoseconds()
	s.sol.Store(sol)
	if s.cfg.OnSolve != nil {
		s.cfg.OnSolve(sol)
	}
	return true
}

// solveSnapshot runs the batch solvers over the snapshot coreset.
func (s *Service) solveSnapshot(parts [][]metric.Point, slack float64, sol *Solution) error {
	scheduler := s.cfg.Sched
	if s.cfg.Deadline > 0 {
		scheduler = scheduler.WithDeadline(time.Now().Add(s.cfg.Deadline))
	}
	in := instance.New(s.cfg.Space, parts)
	c := mpc.NewCluster(len(parts), s.cfg.Seed^(sol.Seq*0x9e3779b97f4a7c15+1))
	res, err := kcenter.Solve(c, in, kcenter.Config{
		K:           s.cfg.K,
		Eps:         s.cfg.Eps,
		Speculation: s.cfg.Speculation,
		Sched:       scheduler,
	})
	if err != nil {
		return err
	}
	sol.Centers = res.Centers
	sol.CoresetRadius = res.Radius
	sol.RadiusBound = res.RadiusBound + slack
	sol.CoordWords = c.Stats().TotalWords

	if s.cfg.Diversity {
		cd := mpc.NewCluster(len(parts), s.cfg.Seed^(sol.Seq*0x9e3779b97f4a7c15+2))
		dres, err := diversity.Maximize(cd, in, diversity.Config{
			K:           s.cfg.K,
			Eps:         s.cfg.Eps,
			Speculation: s.cfg.Speculation,
			Sched:       scheduler,
		})
		if err != nil {
			return err
		}
		sol.Diverse = dres.Points
		sol.Diversity = dres.Diversity
		sol.CoordWords += cd.Stats().TotalWords
	}
	return nil
}

// staleness stamps freshness metadata for the given loaded solution.
func (s *Service) staleness(sol *Solution) Staleness {
	st := Staleness{Resolving: s.resolves.Load() > 0}
	if sol != nil {
		st.Seq = sol.Seq
		st.OpsBehind = s.ops.Load() - sol.Ops
	} else {
		st.OpsBehind = s.ops.Load()
	}
	return st
}

// Solution returns the cached solution (nil before the first completed
// solve) with its staleness.
func (s *Service) Solution() (*Solution, Staleness) {
	sol := s.sol.Load()
	return sol, s.staleness(sol)
}

// Assign answers a nearest-center query from the cached solution.
func (s *Service) Assign(p metric.Point) Assignment {
	sol := s.sol.Load()
	a := Assignment{Center: -1, Dist: math.Inf(1), Staleness: s.staleness(sol)}
	if sol != nil && len(sol.Centers) > 0 {
		a.Center, a.Dist = metric.Nearest(s.cfg.Space, p, sol.Centers)
	}
	return a
}

// Radius answers the certified covering-radius query: every point
// summarized at the solution's snapshot lies within bound of some
// center. 0 before the first solve (vacuous — check Staleness.Seq).
func (s *Service) Radius() (bound float64, st Staleness) {
	sol := s.sol.Load()
	st = s.staleness(sol)
	if sol != nil {
		bound = sol.RadiusBound
	}
	return bound, st
}

// Diverse answers the diversity query from the cached solution (nil
// and 0 before the first solve or when Config.Diversity is unset).
func (s *Service) Diverse() (pts []metric.Point, div float64, st Staleness) {
	sol := s.sol.Load()
	st = s.staleness(sol)
	if sol != nil {
		pts, div = sol.Diverse, sol.Diversity
	}
	return pts, div, st
}

// Err returns the most recent solve error, if any. Failed solves keep
// the previous solution installed.
func (s *Service) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.lastErr
}

// Stats returns operational counters.
func (s *Service) Stats() Stats {
	st := Stats{Ops: s.ops.Load(), Solves: s.seq.Load()}
	for i, sh := range s.shards {
		s.shardMu[i].Lock()
		st.Live += len(sh.live)
		st.Rebuilds += sh.rebuilds
		s.shardMu[i].Unlock()
	}
	return st
}

// Close stops accepting re-solve triggers and waits for in-flight
// solves to finish. Mutations after Close still update the sketches
// but never spawn solves; queries keep working.
func (s *Service) Close() {
	s.spawnMu.Lock()
	s.closed = true
	s.spawnMu.Unlock()
	s.wg.Wait()
}
