package transport

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"parclust/internal/metric"
	"parclust/internal/mpc"
)

// The SPMD test bodies. Registered once per process — both "driver" and
// "worker" sides of these tests share the process, exactly like the real
// kclusterd deployment shares the registrations by linking the same
// packages. The bodies follow the registry contract: everything they
// touch comes from Env, Bag, Args, Inbox and RNG.
func init() {
	mpc.Register("tptest/load", func(mc *mpc.Machine) error {
		env := mc.Env()
		bag := mc.Bag()
		bag["tptest.sum"] = 0.0
		bag["tptest.n"] = len(env.Parts[mc.ID()])
		return nil
	})
	mpc.Register("tptest/mix", func(mc *mpc.Machine) error {
		bag := mc.Bag()
		sum := bag["tptest.sum"].(float64)
		for _, msg := range mc.Inbox() {
			if fs, ok := msg.Payload.(mpc.Floats); ok {
				for _, v := range fs {
					sum += v
				}
			}
		}
		sum += mc.RNG.Float64()
		bag["tptest.sum"] = sum
		step := mc.Args().I[0]
		mc.Send((mc.ID()+step)%mc.NumMachines(), mpc.Floats{sum, float64(mc.ID())})
		mc.SendCentral(mpc.Int(bag["tptest.n"].(int)))
		mc.NoteMemory(int64(10 + mc.ID()))
		mc.Yield(mpc.Floats{sum})
		return nil
	})
	mpc.Register("tptest/boom", func(mc *mpc.Machine) error {
		if mc.ID() == mc.Args().I[0] {
			return fmt.Errorf("boom on %d", mc.ID())
		}
		mc.SendCentral(mpc.Int(1))
		return nil
	})
}

// spmdTestEnv builds a small valid session env over the l2 space.
func spmdTestEnv(m int) *mpc.Env {
	parts := make([][]metric.Point, m)
	ids := make([][]int, m)
	next := 0
	for i := range parts {
		for j := 0; j < 2+i%2; j++ {
			parts[i] = append(parts[i], metric.Point{float64(i), float64(j)})
			ids[i] = append(ids[i], next)
			next++
		}
	}
	return &mpc.Env{
		Key:       "tptest-env",
		SpaceName: "l2",
		Space:     metric.L2{},
		Parts:     parts,
		IDs:       ids,
	}
}

// runSPMDWorkload drives the mixed registered/closure sequence the
// parity checks compare: a Local load, registered rounds with
// cross-group traffic, a closure superstep mid-session (forcing a
// worker → driver state sync and back), and more registered rounds.
func runSPMDWorkload(t *testing.T, c *mpc.Cluster) [][]mpc.Yield {
	t.Helper()
	if err := c.SetEnv(spmdTestEnv(c.NumMachines())); err != nil {
		t.Fatal(err)
	}
	var all [][]mpc.Yield
	if _, err := c.RunLocal("tptest/load", mpc.Args{}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		ys, err := c.RunStep("tptest/mix", mpc.Args{I: []int{1 + r%3}})
		if err != nil {
			t.Fatalf("mix round %d: %v", r, err)
		}
		all = append(all, ys)
	}
	// A closure superstep is SPMD-ineligible: state must sync back to
	// the driver (delivering the staged messages from the last mix), run
	// here, then push back for the remaining registered rounds.
	if err := c.Superstep("tptest/closure", func(mc *mpc.Machine) error {
		n := 0
		for _, msg := range mc.Inbox() {
			n += msg.Payload.Words()
		}
		mc.Send((mc.ID()+1)%mc.NumMachines(), mpc.Ints{n, mc.ID()})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		ys, err := c.RunStep("tptest/mix", mpc.Args{I: []int{2}})
		if err != nil {
			t.Fatalf("post-closure mix round %d: %v", r, err)
		}
		all = append(all, ys)
	}
	return all
}

// normalizeRounds strips the fields that legitimately differ across
// backends — wall time, the transport tag, and the wire-traffic split —
// leaving everything the parity contract pins byte-identical.
func normalizeRounds(prs []mpc.RoundStats) []mpc.RoundStats {
	out := append([]mpc.RoundStats(nil), prs...)
	for i := range out {
		out[i].WallNanos = 0
		out[i].Transport = ""
		out[i].WireDataWords = 0
		out[i].WireCtrlWords = 0
	}
	return out
}

// TestSPMDMatchesInproc is the transport-level SPMD parity check: the
// registered-superstep workload run worker-side (machines resident in
// kclusterd-style servers, coordinator sending only control frames)
// produces yields and round statistics byte-identical to the in-process
// coordinator-compute run.
func TestSPMDMatchesInproc(t *testing.T) {
	const m, seed = 6, 17
	ref := mpc.NewCluster(m, seed)
	refYields := runSPMDWorkload(t, ref)
	refStats := ref.Stats()

	for _, workers := range []int{1, 2, 3, 6} {
		addrs, _ := startWorkers(t, workers)
		cl := dialFleet(t, addrs, m)
		c := mpc.NewCluster(m, seed, mpc.WithTransport(cl), mpc.WithSPMD())
		gotYields := runSPMDWorkload(t, c)
		if err := c.SetEnv(nil); err != nil { // tears the session down
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotYields, refYields) {
			t.Fatalf("workers=%d: SPMD yields diverge from inproc:\n got %v\nwant %v", workers, gotYields, refYields)
		}
		gotStats := c.Stats()
		if gotStats.Rounds != refStats.Rounds || gotStats.TotalWords != refStats.TotalWords ||
			gotStats.MaxRoundSent != refStats.MaxRoundSent || gotStats.MaxRoundRecv != refStats.MaxRoundRecv ||
			gotStats.MaxMemoryWords != refStats.MaxMemoryWords {
			t.Fatalf("workers=%d: SPMD stats totals diverge: got %+v want %+v", workers, gotStats, refStats)
		}
		if !reflect.DeepEqual(gotStats.SentWords, refStats.SentWords) || !reflect.DeepEqual(gotStats.RecvWords, refStats.RecvWords) {
			t.Fatalf("workers=%d: per-machine totals diverge", workers)
		}
		if !reflect.DeepEqual(normalizeRounds(gotStats.PerRound), normalizeRounds(refStats.PerRound)) {
			t.Fatalf("workers=%d: per-round stats diverge:\n got %+v\nwant %+v",
				workers, normalizeRounds(gotStats.PerRound), normalizeRounds(refStats.PerRound))
		}
		// The wire split: registered rounds ship only cross-group words
		// as data; with one worker every destination is in-group, so the
		// data plane is empty.
		for i, rs := range gotStats.PerRound {
			if rs.Name != "tptest/mix" {
				continue
			}
			if workers == 1 && rs.WireDataWords != 0 {
				t.Fatalf("workers=1 round %d: %d data words on the wire, want 0", i, rs.WireDataWords)
			}
			if workers > 1 && rs.WireDataWords >= rs.TotalWords {
				t.Fatalf("workers=%d round %d: %d data words not below total %d", workers, i, rs.WireDataWords, rs.TotalWords)
			}
			if rs.WireCtrlWords == 0 {
				t.Fatalf("workers=%d round %d: no control words metered", workers, i)
			}
		}
	}
}

// TestSPMDErrorParity pins that a body error inside a worker reproduces
// the driver path exactly: same error string, the round still counts,
// its staged messages are discarded, and the session keeps working.
func TestSPMDErrorParity(t *testing.T) {
	const m, seed = 4, 23
	run := func(c *mpc.Cluster) (string, []mpc.Yield, mpc.Stats) {
		t.Helper()
		if err := c.SetEnv(spmdTestEnv(m)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.RunLocal("tptest/load", mpc.Args{}); err != nil {
			t.Fatal(err)
		}
		_, err := c.RunStep("tptest/boom", mpc.Args{I: []int{2}})
		if err == nil {
			t.Fatal("boom step succeeded")
		}
		ys, err2 := c.RunStep("tptest/mix", mpc.Args{I: []int{1}})
		if err2 != nil {
			t.Fatalf("mix after boom: %v", err2)
		}
		return err.Error(), ys, c.Stats()
	}

	refErr, refYields, refStats := run(mpc.NewCluster(m, seed))

	addrs, _ := startWorkers(t, 2)
	cl := dialFleet(t, addrs, m)
	c := mpc.NewCluster(m, seed, mpc.WithTransport(cl), mpc.WithSPMD())
	gotErr, gotYields, gotStats := run(c)

	if gotErr != refErr {
		t.Fatalf("SPMD error %q, inproc %q", gotErr, refErr)
	}
	if !reflect.DeepEqual(gotYields, refYields) {
		t.Fatalf("post-error yields diverge: got %v want %v", gotYields, refYields)
	}
	if !reflect.DeepEqual(normalizeRounds(gotStats.PerRound), normalizeRounds(refStats.PerRound)) {
		t.Fatalf("post-error per-round stats diverge")
	}
}

// TestSPMDSessionLostConnection pins the failure contract: session calls
// do not redial, so severing the connections mid-session turns the next
// registered round into a hard transport error.
func TestSPMDSessionLostConnection(t *testing.T) {
	const m = 4
	addrs, _ := startWorkers(t, 2)
	cl := dialFleet(t, addrs, m)
	c := mpc.NewCluster(m, 31, mpc.WithTransport(cl), mpc.WithSPMD())
	if err := c.SetEnv(spmdTestEnv(m)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunStep("tptest/mix", mpc.Args{I: []int{1}}); err != nil {
		// The bag is unset on the first mix without a load — tolerate an
		// algorithm error here, the point is the session exists.
		if errors.Is(err, mpc.ErrTransport) {
			t.Fatalf("setup round already failed with transport error: %v", err)
		}
	}
	cl.SeverConnections()
	if _, err := c.RunStep("tptest/mix", mpc.Args{I: []int{1}}); !errors.Is(err, mpc.ErrTransport) {
		t.Fatalf("round after sever: %v, want mpc.ErrTransport", err)
	}
}
