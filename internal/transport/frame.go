package transport

// Length-prefixed framing for the coordinator↔worker protocol. Every
// frame is
//
//	'p' 'c' | u8 version | u8 type | u32 bodyLen | body
//
// over a plain TCP stream. The 8-byte header is fixed; bodyLen is
// validated against the session's frame cap before any read, so a
// corrupt or hostile peer cannot make the other side allocate an
// unbounded buffer. Frame types and body layouts are documented in
// docs/TRANSPORT.md ("Wire format") and must change in lockstep.

import (
	"encoding/binary"
	"fmt"
	"io"

	"parclust/internal/mpc"
)

// Protocol identity. Version is negotiated in the hello exchange: both
// sides currently speak exactly version 1, and a mismatch fails the
// handshake rather than guessing.
const (
	frameMagic0  = 'p'
	frameMagic1  = 'c'
	ProtoVersion = 1
	headerLen    = 8
)

// Frame types.
const (
	// frameHello (coordinator → worker) opens a session:
	// u32 machines | u32 groupLo | u32 groupHi.
	frameHello = 1
	// frameHelloOK (worker → coordinator) accepts it:
	// u32 maxFrameBytes (the worker's cap, so the coordinator can stay
	// under the stricter of the two).
	frameHelloOK = 2
	// frameExchange (coordinator → worker) carries one round's traffic
	// for the worker's group: u32 round | u32 msgCount | messages.
	frameExchange = 3
	// frameExchangeOK (worker → coordinator) returns the metered inbox
	// shard: u64 meteredWords | u32 round | u32 msgCount | messages.
	frameExchangeOK = 4
	// frameStats (coordinator → worker) requests cumulative counters;
	// empty body.
	frameStats = 5
	// frameStatsOK: u64 sessions | u64 rounds | u64 frames |
	// u64 bytesIn | u64 bytesOut | u64 wordsMetered.
	frameStatsOK = 6
	// frameError (either direction) reports a protocol failure before
	// closing: utf-8 message.
	frameError = 7
	// frameGoodbye (coordinator → worker) ends the session cleanly;
	// empty body.
	frameGoodbye = 8

	// SPMD session frames (docs/TRANSPORT.md, "SPMD supersteps"). Every
	// coordinator-link SPMD request opens with the 16-byte session id;
	// body layouts are defined by the control-plane codec in control.go.

	// frameSPMDSetup (coordinator → worker) creates a worker-side SPMD
	// session: session id, cluster geometry, the fleet's groups and
	// addresses, and the replicated read-only env (space name, τ ladder,
	// the full input partition).
	frameSPMDSetup = 9
	// frameSPMDSetupOK (worker → coordinator) accepts it; empty body.
	frameSPMDSetupOK = 10
	// frameSPMDConnect (coordinator → worker) tells the worker to dial
	// its peer mesh: session id. Sent only after every worker in the
	// session answered setupOK, so a peer hello never races session
	// creation.
	frameSPMDConnect = 11
	// frameSPMDConnectOK (worker → coordinator); empty body.
	frameSPMDConnectOK = 12
	// frameSPMDRun (coordinator → worker) executes one registered
	// superstep against worker-held state: session id, staged-message
	// outcome, Local flag, round tag, superstep name, per-round scalars.
	frameSPMDRun = 13
	// frameSPMDRunOK (worker → coordinator) returns the group's
	// accounting: shard words, memory high-water, receive vector,
	// per-machine reports, yields.
	frameSPMDRunOK = 14
	// frameSPMDPush (coordinator → worker) ships the group's machine
	// state (RNG positions, pending mailboxes) on a driver → worker
	// residency transition.
	frameSPMDPush = 15
	// frameSPMDPushOK (worker → coordinator); empty body.
	frameSPMDPushOK = 16
	// frameSPMDSync (coordinator → worker) resolves staged messages and
	// requests the group's machine state back (worker → driver
	// transition): session id, staged-message outcome.
	frameSPMDSync = 17
	// frameSPMDSyncOK (worker → coordinator): the group's machine state.
	frameSPMDSyncOK = 18
	// frameSPMDEnd (coordinator → worker) tears the session down:
	// session id.
	frameSPMDEnd = 19
	// frameSPMDEndOK (worker → coordinator); empty body.
	frameSPMDEndOK = 20
	// framePeerHello (worker → worker) opens one direction of the peer
	// mesh: session id, source group index.
	framePeerHello = 21
	// framePeerHelloOK (worker → worker); empty body.
	framePeerHelloOK = 22
	// framePeerShard (worker → worker) carries one round's cross-group
	// messages; the body layout is exactly frameExchange's
	// (u32 round | u32 msgCount | messages), decoded by the same path.
	framePeerShard = 23
)

// DefaultMaxFrameBytes caps one frame's body. A frame holds one round's
// traffic for one machine group; at 8 bytes per word this admits ~8M
// words per group-round, far above any Õ(mk)-bounded round. Raise it
// via DialConfig/ServerConfig for workloads that legitimately ship more.
const DefaultMaxFrameBytes = 64 << 20

// ErrFrame marks a malformed or oversized frame.
var ErrFrame = fmt.Errorf("transport: malformed frame")

// appendFrameHeader writes the 8-byte header for a body of length n.
func appendFrameHeader(b []byte, typ byte, n int) []byte {
	b = append(b, frameMagic0, frameMagic1, ProtoVersion, typ)
	return appendU32(b, uint32(n))
}

// writeFrame sends one frame. The header is prepended into a small
// stack buffer; body is written as-is.
func writeFrame(w io.Writer, typ byte, body []byte) error {
	hdr := appendFrameHeader(make([]byte, 0, headerLen), typ, len(body))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// parseFrameHeader validates an 8-byte header against the frame cap and
// returns the frame type and body length.
func parseFrameHeader(hdr []byte, maxBody uint32) (typ byte, bodyLen uint32, err error) {
	if len(hdr) < headerLen {
		return 0, 0, fmt.Errorf("%w: truncated header (%d bytes)", ErrFrame, len(hdr))
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return 0, 0, fmt.Errorf("%w: bad magic %#x %#x", ErrFrame, hdr[0], hdr[1])
	}
	if hdr[2] != ProtoVersion {
		return 0, 0, fmt.Errorf("%w: protocol version %d, want %d", ErrFrame, hdr[2], ProtoVersion)
	}
	typ = hdr[3]
	if typ < frameHello || typ > framePeerShard {
		return 0, 0, fmt.Errorf("%w: unknown frame type %d", ErrFrame, typ)
	}
	bodyLen = binary.BigEndian.Uint32(hdr[4:])
	if bodyLen > maxBody {
		return 0, 0, fmt.Errorf("%w: body of %d bytes exceeds cap %d", ErrFrame, bodyLen, maxBody)
	}
	return typ, bodyLen, nil
}

// readFrame reads one complete frame, enforcing the body cap before
// allocating.
func readFrame(r io.Reader, maxBody uint32) (typ byte, body []byte, err error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ, n, err := parseFrameHeader(hdr[:], maxBody)
	if err != nil {
		return 0, nil, err
	}
	if n == 0 {
		return typ, nil, nil
	}
	body = make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("reading %d-byte body: %w", n, err)
	}
	return typ, body, nil
}

// decodeExchangeBody walks an exchange (or the message part of an
// exchangeOK) body — u32 round, u32 msgCount, messages — invoking visit
// for each decoded message. m bounds machine ids; when lo < hi the
// destinations must fall in [lo, hi). It returns the round tag and the
// total decoded payload words. This is the single decode path shared by
// the worker (metering + validation) and the coordinator (delivery), so
// the two sides cannot drift.
func decodeExchangeBody(body []byte, m, lo, hi int, visit func(src, dst int, p mpc.Payload)) (round int, words int64, err error) {
	d := &decoder{b: body}
	round = int(d.u32())
	count := d.u32()
	for i := uint32(0); i < count && d.err == nil; i++ {
		src, dst, p := d.message(m, lo, hi)
		if d.err != nil {
			break
		}
		words += int64(p.Words())
		if visit != nil {
			visit(src, dst, p)
		}
	}
	if d.err == nil && len(d.b) != 0 {
		d.fail("%d trailing bytes after %d messages", len(d.b), count)
	}
	if d.err != nil {
		return 0, 0, d.err
	}
	return round, words, nil
}
