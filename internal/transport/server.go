package transport

// The worker side of the TCP backend: the frame loop cmd/kclusterd
// serves. A Server accepts any number of concurrent coordinator
// sessions (each session = one TCP connection = one machine group of
// one cluster); sessions are independent and workers hold no per-round
// state, so the same worker can serve many clusters, forked shadow
// clusters, and retried rounds without coordination.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"parclust/internal/mpc"
)

// ServerConfig configures a worker.
type ServerConfig struct {
	// MaxFrameBytes caps one frame's body; 0 means
	// DefaultMaxFrameBytes. The cap is advertised to coordinators in
	// the hello handshake.
	MaxFrameBytes uint32
	// Logf, when non-nil, receives one line per session event (open,
	// close, protocol error). kclusterd wires it to its -verbose flag.
	Logf func(format string, args ...any)
}

// WorkerStats are a worker's cumulative counters across all sessions,
// the per-backend observability surface documented in
// docs/OBSERVABILITY.md. Counters are at-least-once under coordinator
// retries: a round resent after a lost connection is metered again
// (driver-side accounting stays exact — see docs/TRANSPORT.md).
type WorkerStats struct {
	// Sessions counts accepted coordinator connections.
	Sessions int64
	// Rounds counts exchange frames served.
	Rounds int64
	// Frames counts all frames served (exchanges, stats, goodbyes).
	Frames int64
	// BytesIn / BytesOut count frame bodies received and sent.
	BytesIn  int64
	BytesOut int64
	// WordsMetered is the total payload words decoded on the wire — the
	// worker's independent measurement of the traffic the simulator
	// meters from outboxes.
	WordsMetered int64
}

// Server is a transport worker: the process-side counterpart of Client.
// Create with NewServer, drive with Serve, observe with Stats.
type Server struct {
	cfg ServerConfig

	sessions, rounds, frames atomic.Int64
	bytesIn, bytesOut        atomic.Int64
	words                    atomic.Int64

	// spmd routes live SPMD sessions by their coordinator-chosen id, so
	// peer-mesh connections from other workers can find the replica
	// their shards belong to (spmd_server.go).
	spmdMu sync.Mutex
	spmd   map[string]*spmdWorkerSession
}

// NewServer returns a worker with the given configuration.
func NewServer(cfg ServerConfig) *Server {
	if cfg.MaxFrameBytes == 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	return &Server{cfg: cfg}
}

// Stats returns a snapshot of the worker's cumulative counters.
func (s *Server) Stats() WorkerStats {
	return WorkerStats{
		Sessions:     s.sessions.Load(),
		Rounds:       s.rounds.Load(),
		Frames:       s.frames.Load(),
		BytesIn:      s.bytesIn.Load(),
		BytesOut:     s.bytesOut.Load(),
		WordsMetered: s.words.Load(),
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Serve accepts coordinator sessions on ln until the listener is
// closed, running each session on its own goroutine. It returns nil
// when ln closes and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go s.session(conn)
	}
}

// session speaks the worker protocol on one connection. A coordinator
// connection runs hello handshake, then exchange/stats/SPMD frames until
// goodbye or EOF; a connection opening with a peer hello is the inbound
// half of another worker's SPMD shard mesh and is handed to servePeer.
// Protocol violations answer with a frameError and close the session;
// the coordinator surfaces them as mpc.ErrTransport. SPMD sessions
// created on a coordinator connection die with it.
func (s *Server) session(conn net.Conn) {
	defer conn.Close()
	s.sessions.Add(1)
	peer := conn.RemoteAddr()

	firstTyp, firstBody, err := readFrame(conn, s.cfg.MaxFrameBytes)
	if err != nil {
		s.logf("session %v: first frame: %v", peer, err)
		return
	}
	if firstTyp == framePeerHello {
		s.servePeer(conn, firstBody)
		return
	}
	m, grp, err := s.handshake(conn, firstTyp, firstBody)
	if err != nil {
		s.logf("session %v: handshake: %v", peer, err)
		return
	}
	s.logf("session %v: open (machines=%d group=[%d,%d))", peer, m, grp.Lo, grp.Hi)

	var owned []string
	defer func() {
		for _, id := range owned {
			s.spmdDrop(id)
		}
	}()

	for {
		typ, body, err := readFrame(conn, s.cfg.MaxFrameBytes)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("session %v: read: %v", peer, err)
			}
			return
		}
		s.frames.Add(1)
		s.bytesIn.Add(int64(len(body)))
		switch typ {
		case frameExchange:
			if err := s.serveExchange(conn, body, m, grp); err != nil {
				s.logf("session %v: exchange: %v", peer, err)
				s.fail(conn, err)
				return
			}
		case frameStats:
			st := s.Stats()
			resp := make([]byte, 0, 6*8)
			for _, v := range []int64{st.Sessions, st.Rounds, st.Frames, st.BytesIn, st.BytesOut, st.WordsMetered} {
				resp = appendU64(resp, uint64(v))
			}
			s.bytesOut.Add(int64(len(resp)))
			if err := writeFrame(conn, frameStatsOK, resp); err != nil {
				return
			}
		case frameSPMDSetup:
			id, err := s.serveSPMDSetup(conn, body)
			if err != nil {
				s.logf("session %v: spmd setup: %v", peer, err)
				s.fail(conn, err)
				return
			}
			owned = append(owned, id)
		case frameSPMDConnect:
			if err := s.serveSPMDConnect(conn, body); err != nil {
				s.logf("session %v: spmd connect: %v", peer, err)
				s.fail(conn, err)
				return
			}
		case frameSPMDRun:
			if err := s.serveSPMDRun(conn, body); err != nil {
				s.logf("session %v: spmd run: %v", peer, err)
				s.fail(conn, err)
				return
			}
		case frameSPMDPush:
			if err := s.serveSPMDPush(conn, body); err != nil {
				s.logf("session %v: spmd push: %v", peer, err)
				s.fail(conn, err)
				return
			}
		case frameSPMDSync:
			if err := s.serveSPMDSync(conn, body); err != nil {
				s.logf("session %v: spmd sync: %v", peer, err)
				s.fail(conn, err)
				return
			}
		case frameSPMDEnd:
			d := &decoder{b: body}
			id := d.sessionID()
			d.trailing("spmd end")
			if d.err != nil {
				s.fail(conn, d.err)
				return
			}
			s.spmdDrop(id)
			if err := s.reply(conn, frameSPMDEndOK, nil); err != nil {
				return
			}
		case frameGoodbye:
			s.logf("session %v: closed", peer)
			return
		default:
			s.fail(conn, fmt.Errorf("unexpected frame type %d mid-session", typ))
			return
		}
	}
}

// handshake validates the already-read hello frame and answers with the
// worker's frame cap.
func (s *Server) handshake(conn net.Conn, typ byte, body []byte) (m int, grp Group, err error) {
	if typ != frameHello {
		err := fmt.Errorf("first frame type %d, want hello", typ)
		s.fail(conn, err)
		return 0, Group{}, err
	}
	d := &decoder{b: body}
	m = int(d.u32())
	grp = Group{Lo: int(d.u32()), Hi: int(d.u32())}
	if d.err == nil && (m < 1 || grp.Lo < 0 || grp.Hi < grp.Lo || grp.Hi > m) {
		d.fail("invalid hello: machines=%d group=[%d,%d)", m, grp.Lo, grp.Hi)
	}
	if d.err == nil && len(d.b) != 0 {
		d.fail("%d trailing bytes in hello", len(d.b))
	}
	if d.err != nil {
		s.fail(conn, d.err)
		return 0, Group{}, d.err
	}
	resp := appendU32(nil, s.cfg.MaxFrameBytes)
	if err := writeFrame(conn, frameHelloOK, resp); err != nil {
		return 0, Group{}, err
	}
	return m, grp, nil
}

// serveExchange meters and validates one round's shard and returns it
// as the group's inbox: u64 meteredWords, then the echoed messages. The
// echo reuses the request bytes — the codec is canonical, so re-encoding
// the decoded messages would produce the identical bytes.
func (s *Server) serveExchange(conn net.Conn, body []byte, m int, grp Group) error {
	_, words, err := decodeExchangeBody(body, m, grp.Lo, grp.Hi, func(src, dst int, p mpc.Payload) {})
	if err != nil {
		return err
	}
	s.rounds.Add(1)
	s.words.Add(words)
	resp := make([]byte, 0, 8+len(body))
	resp = appendU64(resp, uint64(words))
	resp = append(resp, body...)
	s.bytesOut.Add(int64(len(resp)))
	return writeFrame(conn, frameExchangeOK, resp)
}

// fail reports a protocol error to the peer on a best-effort basis
// before the session closes.
func (s *Server) fail(conn net.Conn, err error) {
	_ = writeFrame(conn, frameError, []byte(err.Error()))
}
