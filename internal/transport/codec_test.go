package transport

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"parclust/internal/metric"
	"parclust/internal/mpc"
)

// roundTrip encodes a payload and decodes it back, asserting no error
// and no trailing bytes.
func roundTrip(t *testing.T, p mpc.Payload) mpc.Payload {
	t.Helper()
	b, err := appendPayload(nil, p)
	if err != nil {
		t.Fatalf("encode %T: %v", p, err)
	}
	d := &decoder{b: b}
	got := d.payload()
	if d.err != nil {
		t.Fatalf("decode %T: %v", p, d.err)
	}
	if len(d.b) != 0 {
		t.Fatalf("decode %T left %d trailing bytes", p, len(d.b))
	}
	return got
}

// payloadsEqual compares payloads treating nil and empty slices as
// equal: the decoder returns nil for zero-length vectors, which is
// semantically identical for every collector in internal/mpc.
func payloadsEqual(a, b mpc.Payload) bool {
	return reflect.DeepEqual(normalize(a), normalize(b))
}

func normalize(p mpc.Payload) mpc.Payload {
	switch v := p.(type) {
	case mpc.Points:
		return mpc.Points{Pts: normPts(v.Pts)}
	case mpc.TaggedPoints:
		return mpc.TaggedPoints{Tag: v.Tag, Pts: normPts(v.Pts)}
	case mpc.IndexedPoints:
		return mpc.IndexedPoints{IDs: normInts(v.IDs), Pts: normPts(v.Pts)}
	case mpc.WeightedPoints:
		return mpc.WeightedPoints{Tag: v.Tag, IDs: normInts(v.IDs), Pts: normPts(v.Pts), Ws: normFloats(v.Ws)}
	case mpc.Ints:
		return mpc.Ints(normInts(v))
	case mpc.Floats:
		return mpc.Floats(normFloats(v))
	case mpc.KeyedFloats:
		return mpc.KeyedFloats{Keys: normInts(v.Keys), Vals: normFloats(v.Vals)}
	default:
		return p
	}
}

func normInts(v []int) []int {
	if len(v) == 0 {
		return nil
	}
	return v
}

func normFloats(v []float64) []float64 {
	if len(v) == 0 {
		return nil
	}
	return v
}

func normPts(pts []metric.Point) []metric.Point {
	if len(pts) == 0 {
		return nil
	}
	out := make([]metric.Point, len(pts))
	for i, p := range pts {
		if len(p) == 0 {
			out[i] = nil
		} else {
			out[i] = p
		}
	}
	return out
}

// randomPayload draws one payload of the given kind with sizes and
// values from rng, including empty and degenerate shapes.
func randomPayload(rng *rand.Rand, kind int) mpc.Payload {
	pts := func() []metric.Point {
		n := rng.Intn(5)
		out := make([]metric.Point, n)
		for i := range out {
			dim := rng.Intn(4)
			p := make(metric.Point, dim)
			for j := range p {
				p[j] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(7)-3))
			}
			out[i] = p
		}
		return out
	}
	ints := func() []int {
		n := rng.Intn(5)
		out := make([]int, n)
		for i := range out {
			out[i] = rng.Int() - rng.Int()
		}
		return out
	}
	floats := func() []float64 {
		n := rng.Intn(5)
		out := make([]float64, n)
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out
	}
	switch kind {
	case kindPoints:
		return mpc.Points{Pts: pts()}
	case kindTaggedPoints:
		return mpc.TaggedPoints{Tag: rng.Intn(100) - 50, Pts: pts()}
	case kindIndexedPoints:
		return mpc.IndexedPoints{IDs: ints(), Pts: pts()}
	case kindWeightedPoints:
		return mpc.WeightedPoints{Tag: rng.Intn(100), IDs: ints(), Pts: pts(), Ws: floats()}
	case kindInts:
		return mpc.Ints(ints())
	case kindFloats:
		return mpc.Floats(floats())
	case kindInt:
		return mpc.Int(rng.Int() - rng.Int())
	case kindFloat:
		return mpc.Float(rng.NormFloat64())
	case kindKeyedFloats:
		return mpc.KeyedFloats{Keys: ints(), Vals: floats()}
	}
	panic("unknown kind")
}

// TestPayloadRoundTrip drives every payload kind through the codec with
// randomized shapes and checks value equality and Words() preservation:
// a decoded payload must meter exactly like the one that was sent, or
// wire metering would drift from driver metering.
func TestPayloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	kinds := []int{
		kindPoints, kindTaggedPoints, kindIndexedPoints, kindWeightedPoints,
		kindInts, kindFloats, kindInt, kindFloat, kindKeyedFloats,
	}
	for _, kind := range kinds {
		for trial := 0; trial < 50; trial++ {
			p := randomPayload(rng, kind)
			got := roundTrip(t, p)
			if !payloadsEqual(p, got) {
				t.Fatalf("kind %d trial %d: round-trip %#v -> %#v", kind, trial, p, got)
			}
			if p.Words() != got.Words() {
				t.Fatalf("kind %d trial %d: Words %d -> %d", kind, trial, p.Words(), got.Words())
			}
		}
	}
}

// TestCodecPreservesFloatBits checks the codec is bit-exact for the
// IEEE-754 values a metric computation can produce, including negative
// zero, infinities, subnormals and NaN payloads. Bit preservation is
// what makes tcp-vs-inproc parity exact rather than approximate.
func TestCodecPreservesFloatBits(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, math.Pi,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.SmallestNonzeroFloat64, math.MaxFloat64,
		math.Nextafter(1, 2),
	}
	got := roundTrip(t, mpc.Floats(vals)).(mpc.Floats)
	if len(got) != len(vals) {
		t.Fatalf("length %d, want %d", len(got), len(vals))
	}
	for i, v := range vals {
		if math.Float64bits(got[i]) != math.Float64bits(v) {
			t.Fatalf("index %d: bits %#x, want %#x (value %v)", i, math.Float64bits(got[i]), math.Float64bits(v), v)
		}
	}
}

// TestCodecCanonical checks that encoding is deterministic: the same
// payload encodes to the same bytes twice. The parity suite and the
// worker echo path both rely on this.
func TestCodecCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for kind := kindPoints; kind <= kindKeyedFloats; kind++ {
		p := randomPayload(rng, kind)
		a, err := appendPayload(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := appendPayload(nil, p)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("kind %d: two encodings of %#v differ", kind, p)
		}
	}
}

// TestEmptyPayloads pins the degenerate shapes: empty vectors, empty
// point sets, zero-dimensional points.
func TestEmptyPayloads(t *testing.T) {
	for _, p := range []mpc.Payload{
		mpc.Points{},
		mpc.Points{Pts: []metric.Point{{}}},
		mpc.TaggedPoints{Tag: -1},
		mpc.IndexedPoints{},
		mpc.WeightedPoints{},
		mpc.Ints{},
		mpc.Ints(nil),
		mpc.Floats{},
		mpc.Int(0),
		mpc.Float(0),
		mpc.KeyedFloats{},
	} {
		got := roundTrip(t, p)
		if !payloadsEqual(p, got) {
			t.Fatalf("round-trip %#v -> %#v", p, got)
		}
		if p.Words() != got.Words() {
			t.Fatalf("%#v: Words %d -> %d", p, p.Words(), got.Words())
		}
	}
}

// TestUnknownPayloadRejected checks the encoder refuses types outside
// the closed wire vocabulary instead of silently mangling them.
func TestUnknownPayloadRejected(t *testing.T) {
	if _, err := appendPayload(nil, unknownPayload{}); err == nil {
		t.Fatal("encoding an unknown payload type succeeded")
	}
}

type unknownPayload struct{}

func (unknownPayload) Words() int { return 0 }

// TestDecoderRejectsOversizedLengths checks the length-vs-remaining
// validation: a tiny buffer claiming a huge vector must fail before any
// allocation, not attempt to allocate it.
func TestDecoderRejectsOversizedLengths(t *testing.T) {
	cases := map[string][]byte{
		"huge int vec":    append([]byte{kindInts}, appendU32(nil, 1<<30)...),
		"huge float vec":  append([]byte{kindFloats}, appendU32(nil, math.MaxUint32)...),
		"huge point set":  append([]byte{kindPoints}, appendU32(nil, 1<<31)...),
		"huge point dim":  append([]byte{kindPoints}, appendU32(appendU32(nil, 1), 1<<29)...),
		"truncated int":   {kindInt, 0, 0},
		"truncated float": {kindFloat},
		"unknown kind":    {0xFF, 1, 2, 3},
		"zero kind":       {0},
		"empty":           {},
	}
	for name, b := range cases {
		d := &decoder{b: b}
		p := d.payload()
		if d.err == nil {
			t.Errorf("%s: decoded %#v from malformed input", name, p)
		}
	}
}

// TestMessageValidation checks src/dst/group range enforcement in the
// message decoder.
func TestMessageValidation(t *testing.T) {
	enc := func(src, dst int) []byte {
		b, err := appendMessage(nil, src, dst, mpc.Int(1))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name    string
		b       []byte
		m       int
		lo, hi  int
		ok      bool
		wantSrc int
		wantDst int
	}{
		{"valid", enc(0, 3), 4, 0, 0, true, 0, 3},
		{"valid in group", enc(1, 2), 4, 2, 4, true, 1, 2},
		{"src out of range", enc(4, 0), 4, 0, 0, false, 0, 0},
		{"dst out of range", enc(0, 4), 4, 0, 0, false, 0, 0},
		{"dst outside group", enc(0, 1), 4, 2, 4, false, 0, 0},
	}
	for _, tc := range cases {
		d := &decoder{b: tc.b}
		src, dst, p := d.message(tc.m, tc.lo, tc.hi)
		if (d.err == nil) != tc.ok {
			t.Errorf("%s: err = %v, want ok=%v", tc.name, d.err, tc.ok)
			continue
		}
		if tc.ok && (src != tc.wantSrc || dst != tc.wantDst || p == nil) {
			t.Errorf("%s: decoded (%d,%d,%v), want (%d,%d,non-nil)", tc.name, src, dst, p, tc.wantSrc, tc.wantDst)
		}
	}
}

// TestExchangeBodyRoundTrip checks the shared exchange-body decode path
// against a hand-assembled round: counts, word totals, trailing-byte
// rejection.
func TestExchangeBodyRoundTrip(t *testing.T) {
	body := appendU32(nil, 9) // round
	body = appendU32(body, 2) // msgCount
	var err error
	body, err = appendMessage(body, 0, 1, mpc.Ints{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	body, err = appendMessage(body, 2, 1, mpc.Float(0.5))
	if err != nil {
		t.Fatal(err)
	}

	var seen int
	round, words, err := decodeExchangeBody(body, 4, 0, 0, func(src, dst int, p mpc.Payload) { seen++ })
	if err != nil {
		t.Fatal(err)
	}
	if round != 9 || words != 4 || seen != 2 {
		t.Fatalf("round=%d words=%d seen=%d, want 9, 4, 2", round, words, seen)
	}

	if _, _, err := decodeExchangeBody(append(body, 0), 4, 0, 0, nil); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, _, err := decodeExchangeBody(body, 4, 2, 4, nil); err == nil {
		t.Fatal("destination outside owned group accepted")
	}
}
