package transport

import (
	"net"
	"testing"

	"parclust/internal/mpc"
)

// startWorkers launches n in-test worker servers on ephemeral localhost
// ports and returns their addresses plus the servers for stats
// inspection. Listeners close on test cleanup.
func startWorkers(t *testing.T, n int) ([]string, []*Server) {
	t.Helper()
	addrs := make([]string, n)
	servers := make([]*Server, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		srv := NewServer(ServerConfig{})
		go srv.Serve(ln)
		addrs[i] = ln.Addr().String()
		servers[i] = srv
	}
	return addrs, servers
}

// dialFleet dials a Client against the fleet and registers cleanup.
func dialFleet(t *testing.T, addrs []string, m int) *Client {
	t.Helper()
	cl, err := Dial(DialConfig{Workers: addrs, Machines: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// runRing runs rounds supersteps of a deterministic ring workload and
// returns the per-machine sums, mirroring the workload the mpc-side
// transport tests use so results are comparable across backends.
func runRing(t *testing.T, c *mpc.Cluster, rounds int) []float64 {
	t.Helper()
	m := c.NumMachines()
	sums := make([]float64, m)
	for r := 0; r < rounds; r++ {
		err := c.Superstep("test/ring", func(mc *mpc.Machine) error {
			for _, msg := range mc.Inbox() {
				for _, v := range msg.Payload.(mpc.Floats) {
					sums[mc.ID()] += v
				}
			}
			mc.Send((mc.ID()+1)%m, mpc.Floats{float64(mc.ID()), mc.RNG.Float64()})
			return nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
	return sums
}

// TestTCPMatchesInproc is the package-level parity check: the same
// seeded workload over real localhost TCP produces exactly the sums the
// in-process backend produces. (The full algorithm-level parity suite
// lives in internal/integration.)
func TestTCPMatchesInproc(t *testing.T) {
	const m, rounds = 6, 8
	ref := runRing(t, mpc.NewCluster(m, 11), rounds)

	for _, workers := range []int{1, 2, 3, 6, 8} {
		addrs, servers := startWorkers(t, workers)
		cl := dialFleet(t, addrs, m)
		c := mpc.NewCluster(m, 11, mpc.WithTransport(cl))
		got := runRing(t, c, rounds)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d machine %d: sum %v over tcp, want %v", workers, i, got[i], ref[i])
			}
		}
		st := cl.Stats()
		if st.Exchanges != rounds {
			t.Fatalf("workers=%d: %d exchanges, want %d", workers, st.Exchanges, rounds)
		}
		if st.WordsOnWire != int64(m*rounds*2) {
			t.Fatalf("workers=%d: %d words on wire, want %d", workers, st.WordsOnWire, m*rounds*2)
		}
		var workerWords int64
		for _, srv := range servers {
			workerWords += srv.Stats().WordsMetered
		}
		if workerWords != st.WordsOnWire {
			t.Fatalf("workers=%d: fleet metered %d words, client saw %d", workers, workerWords, st.WordsOnWire)
		}
	}
}

// TestTCPInboxOrdering pins the inbox sorted-by-sender invariant over
// TCP: a machine receiving from every other machine sees the messages
// in ascending sender order, exactly as the in-process backend delivers
// them.
func TestTCPInboxOrdering(t *testing.T) {
	const m = 5
	addrs, _ := startWorkers(t, 2)
	cl := dialFleet(t, addrs, m)
	c := mpc.NewCluster(m, 3, mpc.WithTransport(cl))

	if err := c.Superstep("test/fanin", func(mc *mpc.Machine) error {
		mc.SendCentral(mpc.Int(mc.ID()))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Superstep("test/check", func(mc *mpc.Machine) error {
		if !mc.IsCentral() {
			return nil
		}
		inbox := mc.Inbox()
		if len(inbox) != m {
			t.Errorf("central inbox has %d messages, want %d", len(inbox), m)
		}
		for i, msg := range inbox {
			if msg.From != i || int(msg.Payload.(mpc.Int)) != i {
				t.Errorf("inbox[%d] = from %d payload %v, want %d", i, msg.From, msg.Payload, i)
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTCPReconnect kills every worker-side connection mid-run and
// checks the client transparently redials and resends, with the retry
// visible in its stats — the transport-level realization of the fault
// model's drop + retransmission.
func TestTCPReconnect(t *testing.T) {
	const m, rounds = 4, 6
	addrs, _ := startWorkers(t, 2)
	cl := dialFleet(t, addrs, m)
	c := mpc.NewCluster(m, 5, mpc.WithTransport(cl))

	runRing(t, c, rounds/2)
	// Sever the live connections behind the client's back; the next
	// exchange must recover by redialing and resending.
	for _, wc := range cl.workers {
		wc.conn.Close()
	}
	runRing(t, c, rounds/2)

	st := cl.Stats()
	if st.Reconnects == 0 {
		t.Fatalf("no reconnects recorded after severed connections: %+v", st)
	}
	if st.Exchanges != rounds {
		t.Fatalf("%d exchanges, want %d", st.Exchanges, rounds)
	}
	// Determinism across the interruption: a fresh uninterrupted run
	// over the same fleet yields the same final-state sums.
	c2 := mpc.NewCluster(m, 5, mpc.WithTransport(cl))
	want := runRing(t, mpc.NewCluster(m, 5), rounds)
	got := runRing(t, c2, rounds)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("machine %d: post-reconnect fleet sum %v, want %v", i, got[i], want[i])
		}
	}
}

// TestTCPForkShared checks a forked cluster can run its waves over the
// parent's shared tcp transport.
func TestTCPForkShared(t *testing.T) {
	const m = 4
	addrs, _ := startWorkers(t, 2)
	cl := dialFleet(t, addrs, m)
	c := mpc.NewCluster(m, 9, mpc.WithTransport(cl))

	refFork := runRing(t, mpc.NewCluster(m, 9).Fork(1), 3)
	got := runRing(t, c.Fork(1), 3)
	for i := range refFork {
		if got[i] != refFork[i] {
			t.Fatalf("machine %d: forked sum %v over tcp, want %v", i, got[i], refFork[i])
		}
	}
}

// TestDialValidation covers the config errors.
func TestDialValidation(t *testing.T) {
	if _, err := Dial(DialConfig{Machines: 4}); err == nil {
		t.Fatal("Dial with no workers succeeded")
	}
	if _, err := Dial(DialConfig{Workers: []string{"127.0.0.1:1"}, Machines: 0}); err == nil {
		t.Fatal("Dial with zero machines succeeded")
	}
}

// TestPartition pins the contiguous near-equal split.
func TestPartition(t *testing.T) {
	for _, tc := range []struct {
		m, workers int
	}{{1, 1}, {4, 2}, {5, 2}, {7, 3}, {3, 5}, {16, 4}} {
		groups := Partition(tc.m, tc.workers)
		if len(groups) != tc.workers {
			t.Fatalf("Partition(%d,%d): %d groups", tc.m, tc.workers, len(groups))
		}
		covered := 0
		for w, g := range groups {
			if g.Lo > g.Hi {
				t.Fatalf("Partition(%d,%d)[%d] inverted: %+v", tc.m, tc.workers, w, g)
			}
			if w > 0 && groups[w-1].Hi != g.Lo {
				t.Fatalf("Partition(%d,%d) not contiguous at %d", tc.m, tc.workers, w)
			}
			covered += g.Size()
		}
		if covered != tc.m || groups[0].Lo != 0 || groups[len(groups)-1].Hi != tc.m {
			t.Fatalf("Partition(%d,%d) covers %d machines: %+v", tc.m, tc.workers, covered, groups)
		}
	}
}
