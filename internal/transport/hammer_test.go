package transport

// The redial-and-resend race hammer. The reconnect tests above sever
// connections between rounds, with the client idle; this suite cuts
// them MID-exchange, while the per-worker goroutines are blocked in
// writeFrame/readFrame, by fronting each worker with a chaos proxy that
// keeps killing whatever it is relaying. The client must keep retrying
// (fresh dial + resend, rounds are idempotent on stateless workers)
// until the round lands, and the final sums must still be byte-exact
// against the in-process baseline. Run under -race this also pins that
// concurrent conn teardown against in-flight I/O is data-race-free.

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"parclust/internal/mpc"
)

// chaosProxy relays TCP between the client and one worker while letting
// the test kill every live relayed connection at any moment.
type chaosProxy struct {
	addr string

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// startChaosProxy listens on an ephemeral port and relays to backend.
func startChaosProxy(t *testing.T, backend string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	p := &chaosProxy{addr: ln.Addr().String(), conns: map[net.Conn]struct{}{}}
	go func() {
		for {
			in, err := ln.Accept()
			if err != nil {
				return
			}
			out, err := net.Dial("tcp", backend)
			if err != nil {
				in.Close()
				continue
			}
			p.track(in)
			p.track(out)
			relay := func(dst, src net.Conn) {
				io.Copy(dst, src)
				dst.Close()
				src.Close()
				p.untrack(dst)
				p.untrack(src)
			}
			go relay(out, in)
			go relay(in, out)
		}
	}()
	return p
}

func (p *chaosProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *chaosProxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// sever closes every connection the proxy is currently relaying —
// including ones with a request or reply frame in flight — and returns
// how many it cut.
func (p *chaosProxy) sever() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
	}
	n := len(p.conns)
	for c := range p.conns {
		delete(p.conns, c)
	}
	return n
}

// TestClientRedialUnderMidExchangeSever is the race hammer: a workload
// of rounds runs while a chaos goroutine keeps cutting the proxied
// connections under the in-flight per-worker exchanges. With a retry
// budget sized for the chaos rate, every round must eventually land and
// the result must match the in-process run exactly.
func TestClientRedialUnderMidExchangeSever(t *testing.T) {
	const m, rounds = 6, 40
	ref := runRing(t, mpc.NewCluster(m, 71), rounds)

	addrs, _ := startWorkers(t, 3)
	proxied := make([]string, len(addrs))
	proxies := make([]*chaosProxy, len(addrs))
	for i, a := range addrs {
		proxies[i] = startChaosProxy(t, a)
		proxied[i] = proxies[i].addr
	}
	cl, err := Dial(DialConfig{Workers: proxied, Machines: m, Retries: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	cut := 0
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Rotate through the proxies so cuts land on different
			// workers of the same round; the tiny sleep keeps the cut
			// rate high relative to round duration so many land while a
			// frame is in flight.
			cut += proxies[i%len(proxies)].sever()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	c := mpc.NewCluster(m, 71, mpc.WithTransport(cl))
	got := runRing(t, c, rounds)
	close(stop)
	wg.Wait()

	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("machine %d: sum %v under chaos, want %v", i, got[i], ref[i])
		}
	}
	st := cl.Stats()
	if st.Exchanges != rounds {
		t.Fatalf("%d exchanges recorded, want %d", st.Exchanges, rounds)
	}
	if cut == 0 {
		t.Fatal("the chaos goroutine never cut a connection — the hammer did not hammer")
	}
	if st.Retries == 0 || st.Reconnects == 0 {
		t.Logf("chaos cut %d conns but the client never retried (retries=%d reconnects=%d); timing was too kind — still a valid parity run",
			cut, st.Retries, st.Reconnects)
	}
}

// TestClientRedialChaosWithConcurrentForks layers fork-shared use on the
// hammer: two forked shadow clusters interleave rounds over one chaotic
// Client (Exchange serializes them), and both must match their
// in-process twins.
func TestClientRedialChaosWithConcurrentForks(t *testing.T) {
	const m, rounds = 4, 12
	refA := runRing(t, mpc.NewCluster(m, 81).Fork(1), rounds)
	refB := runRing(t, mpc.NewCluster(m, 81).Fork(2), rounds)

	addrs, _ := startWorkers(t, 2)
	proxies := make([]*chaosProxy, len(addrs))
	proxied := make([]string, len(addrs))
	for i, a := range addrs {
		proxies[i] = startChaosProxy(t, a)
		proxied[i] = proxies[i].addr
	}
	cl, err := Dial(DialConfig{Workers: proxied, Machines: m, Retries: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			proxies[i%len(proxies)].sever()
			time.Sleep(300 * time.Microsecond)
		}
	}()

	parent := mpc.NewCluster(m, 81, mpc.WithTransport(cl))
	forkA, forkB := parent.Fork(1), parent.Fork(2)
	var fw sync.WaitGroup
	gotA := make([]float64, 0)
	gotB := make([]float64, 0)
	fw.Add(2)
	go func() { defer fw.Done(); gotA = runRing(t, forkA, rounds) }()
	go func() { defer fw.Done(); gotB = runRing(t, forkB, rounds) }()
	fw.Wait()
	close(stop)
	wg.Wait()

	for i := range refA {
		if gotA[i] != refA[i] {
			t.Fatalf("fork 1 machine %d: sum %v under chaos, want %v", i, gotA[i], refA[i])
		}
		if gotB[i] != refB[i] {
			t.Fatalf("fork 2 machine %d: sum %v under chaos, want %v", i, gotB[i], refB[i])
		}
	}
}
