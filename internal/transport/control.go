package transport

// Control-plane codec for the SPMD session frames (frame.go, types
// frameSPMDSetup..framePeerShard). Like the payload codec in codec.go the
// encoding is canonical — the same value always produces the same bytes —
// and every length is validated against the remaining buffer before any
// allocation. Body layouts (strings are u32 len | utf-8 bytes; vectors
// are the codec.go u64vec form; messages are the codec.go message form):
//
//	spmdSetup    id16 | u32 m | u32 workers | u32 self |
//	             workers×(u32 lo | u32 hi) | workers×str addr |
//	             str spaceName | f64vec thresholds |
//	             u32 nParts | nParts×(u64vec ids | points)
//	spmdConnect  id16
//	spmdRun      id16 | u8 prev | u8 local | u32 round | str name |
//	             u64vec I | f64vec F
//	spmdRunOK    u64 shardWords | u64 memoryWords | u64vec recv |
//	             u32 nReports | nReports×(u64 sentWords | u8 flags |
//	             u32 distinctDsts | str err) |
//	             u32 nYields | nYields×(u32 machine | payload)
//	spmdPush     id16 | u32 count | count×machineState
//	spmdSync     id16 | u8 prev
//	spmdSyncOK   u32 count | count×machineState
//	spmdEnd      id16
//	peerHello    id16 | u32 srcGroup
//	peerShard    u32 round | u32 msgCount | messages (the frameExchange
//	             layout, shared with decodeExchangeBody)
//
//	machineState = u64 rngS | u64 rngGamma | u8 haveGauss |
//	               u64 gaussBits | u32 msgCount | messages
//
// where machineState messages carry dst = the owning machine id, reusing
// the message codec's range validation. Report flags: bit 0 = sentAny,
// bit 1 = allCentral.

import (
	"math"

	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
)

// spmdIDLen is the length of an SPMD session id: 16 opaque bytes chosen
// by the coordinator.
const spmdIDLen = 16

// spmdSetupMsg is the decoded form of a frameSPMDSetup body: one
// worker's view of a new SPMD session.
type spmdSetupMsg struct {
	ID     string
	M      int
	Self   int
	Groups []Group
	Addrs  []string

	SpaceName  string
	Thresholds []float64
	Parts      [][]metric.Point
	IDs        [][]int
}

// spmdRunReplyMsg is the decoded form of a frameSPMDRunOK body: one
// group's accounting for one executed superstep.
type spmdRunReplyMsg struct {
	// ShardWords is the payload words this worker shipped to peer
	// workers this round — its contribution to the round's data plane.
	ShardWords int64
	// MemoryWords, Recv, Reports and Yields carry the group's share of
	// the mpc.SPMDReply the coordinator merges. Recv is full cluster
	// length; Reports covers the group's machines in ascending order.
	MemoryWords int64
	Recv        []int64
	Reports     []mpc.SPMDMachineReport
	Yields      []mpc.Yield
}

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

// str reads a u32-length-prefixed string, bounds-checked.
func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if uint64(n) > uint64(len(d.b)) {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.b))
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

// sessionID reads the fixed-length session id that opens every SPMD
// request body.
func (d *decoder) sessionID() string {
	if d.err != nil {
		return ""
	}
	if len(d.b) < spmdIDLen {
		d.fail("truncated session id (%d bytes left)", len(d.b))
		return ""
	}
	id := string(d.b[:spmdIDLen])
	d.b = d.b[spmdIDLen:]
	return id
}

// trailing fails the decode when body bytes remain after what, a frame
// type name for the error message.
func (d *decoder) trailing(what string) {
	if d.err == nil && len(d.b) != 0 {
		d.fail("%d trailing bytes in %s body", len(d.b), what)
	}
}

func appendInt64Vec(b []byte, vs []int64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU64(b, uint64(v))
	}
	return b
}

func (d *decoder) int64Vec() []int64 {
	n := d.vecLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(d.u64())
	}
	return out
}

// appendSPMDSetup encodes a frameSPMDSetup body.
func appendSPMDSetup(b []byte, msg *spmdSetupMsg) []byte {
	b = append(b, msg.ID...)
	b = appendU32(b, uint32(msg.M))
	b = appendU32(b, uint32(len(msg.Groups)))
	b = appendU32(b, uint32(msg.Self))
	for _, g := range msg.Groups {
		b = appendU32(b, uint32(g.Lo))
		b = appendU32(b, uint32(g.Hi))
	}
	for _, a := range msg.Addrs {
		b = appendStr(b, a)
	}
	b = appendStr(b, msg.SpaceName)
	b = appendFloatVec(b, msg.Thresholds)
	b = appendU32(b, uint32(len(msg.Parts)))
	for i := range msg.Parts {
		b = appendIntVec(b, msg.IDs[i])
		b = appendPoints(b, msg.Parts[i])
	}
	return b
}

// decodeSPMDSetup decodes and validates a frameSPMDSetup body: the
// groups must partition [0, m) contiguously, one address per group, one
// part per machine.
func decodeSPMDSetup(body []byte) (*spmdSetupMsg, error) {
	d := &decoder{b: body}
	msg := &spmdSetupMsg{ID: d.sessionID()}
	msg.M = int(d.u32())
	workers := int(d.u32())
	msg.Self = int(d.u32())
	if d.err == nil && (msg.M < 1 || workers < 1 || msg.Self < 0 || msg.Self >= workers) {
		d.fail("invalid spmd setup geometry: m=%d workers=%d self=%d", msg.M, workers, msg.Self)
	}
	if d.err == nil && uint64(workers)*8 > uint64(len(d.b)) {
		d.fail("worker count %d exceeds remaining %d bytes", workers, len(d.b))
	}
	for w := 0; d.err == nil && w < workers; w++ {
		g := Group{Lo: int(d.u32()), Hi: int(d.u32())}
		want := 0
		if w > 0 {
			want = msg.Groups[w-1].Hi
		}
		if d.err == nil && (g.Lo != want || g.Hi < g.Lo || g.Hi > msg.M) {
			d.fail("group %d = [%d,%d) does not continue the partition at %d", w, g.Lo, g.Hi, want)
		}
		msg.Groups = append(msg.Groups, g)
	}
	if d.err == nil && msg.Groups[workers-1].Hi != msg.M {
		d.fail("groups cover [0,%d), want [0,%d)", msg.Groups[workers-1].Hi, msg.M)
	}
	for w := 0; d.err == nil && w < workers; w++ {
		msg.Addrs = append(msg.Addrs, d.str())
	}
	msg.SpaceName = d.str()
	msg.Thresholds = d.floatVec()
	nParts := int(d.u32())
	if d.err == nil && nParts != msg.M {
		d.fail("spmd setup carries %d parts for %d machines", nParts, msg.M)
	}
	if d.err == nil {
		msg.Parts = make([][]metric.Point, nParts)
		msg.IDs = make([][]int, nParts)
		for i := 0; d.err == nil && i < nParts; i++ {
			msg.IDs[i] = d.intVec()
			msg.Parts[i] = d.points()
			if d.err == nil && len(msg.IDs[i]) != len(msg.Parts[i]) {
				d.fail("machine %d part has %d points vs %d ids", i, len(msg.Parts[i]), len(msg.IDs[i]))
			}
		}
	}
	d.trailing("spmd setup")
	if d.err != nil {
		return nil, d.err
	}
	return msg, nil
}

// appendMachineState encodes one machine's residency state: RNG position
// plus pending mailbox. Messages are encoded with dst = id so the shared
// message codec validates them on the way back in.
func appendMachineState(b []byte, id int, st rng.State, pending []mpc.Message) ([]byte, error) {
	b = appendU64(b, st.S)
	b = appendU64(b, st.Gamma)
	if st.HaveGauss {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU64(b, math.Float64bits(st.Gauss))
	b = appendU32(b, uint32(len(pending)))
	var err error
	for _, msg := range pending {
		if b, err = appendMessage(b, msg.From, id, msg.Payload); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// machineState decodes one machine's residency state; id is the machine
// the state belongs to, m the cluster size.
func (d *decoder) machineState(m, id int) (st rng.State, pending []mpc.Message) {
	st.S = d.u64()
	st.Gamma = d.u64()
	switch flag := d.u8(); flag {
	case 0:
	case 1:
		st.HaveGauss = true
	default:
		d.fail("machine %d state: haveGauss flag %d", id, flag)
	}
	st.Gauss = math.Float64frombits(d.u64())
	count := d.u32()
	// Each message costs at least 9 bytes (src, dst, kind).
	if d.err == nil && uint64(count)*9 > uint64(len(d.b)) {
		d.fail("machine %d state: %d messages exceed remaining %d bytes", id, count, len(d.b))
	}
	for i := uint32(0); d.err == nil && i < count; i++ {
		src, _, p := d.message(m, id, id+1)
		if d.err != nil {
			break
		}
		pending = append(pending, mpc.Message{From: src, Payload: p})
	}
	return st, pending
}

// appendSPMDRun encodes a frameSPMDRun body.
func appendSPMDRun(b []byte, id string, round uint32, req *mpc.SPMDRun) []byte {
	b = append(b, id...)
	b = append(b, req.Prev)
	if req.Local {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendU32(b, round)
	b = appendStr(b, req.Name)
	b = appendIntVec(b, req.I)
	b = appendFloatVec(b, req.F)
	return b
}

// decodeSPMDRun decodes a frameSPMDRun body.
func decodeSPMDRun(body []byte) (id string, round uint32, req *mpc.SPMDRun, err error) {
	d := &decoder{b: body}
	id = d.sessionID()
	req = &mpc.SPMDRun{}
	req.Prev = d.u8()
	if d.err == nil && req.Prev > mpc.SPMDPrevAbort {
		d.fail("spmd run: staged outcome %d", req.Prev)
	}
	switch flag := d.u8(); flag {
	case 0:
	case 1:
		req.Local = true
	default:
		d.fail("spmd run: local flag %d", flag)
	}
	round = d.u32()
	req.Name = d.str()
	req.I = d.intVec()
	req.F = d.floatVec()
	d.trailing("spmd run")
	if d.err != nil {
		return "", 0, nil, d.err
	}
	return id, round, req, nil
}

// appendSPMDRunReply encodes a frameSPMDRunOK body. Yields carry
// payloads, so encoding can fail on an out-of-vocabulary type.
func appendSPMDRunReply(b []byte, msg *spmdRunReplyMsg) ([]byte, error) {
	b = appendU64(b, uint64(msg.ShardWords))
	b = appendU64(b, uint64(msg.MemoryWords))
	b = appendInt64Vec(b, msg.Recv)
	b = appendU32(b, uint32(len(msg.Reports)))
	for i := range msg.Reports {
		r := &msg.Reports[i]
		b = appendU64(b, uint64(r.SentWords))
		var flags byte
		if r.SentAny {
			flags |= 1
		}
		if r.AllCentral {
			flags |= 2
		}
		b = append(b, flags)
		b = appendU32(b, uint32(r.DistinctDsts))
		b = appendStr(b, r.Err)
	}
	b = appendU32(b, uint32(len(msg.Yields)))
	var err error
	for _, y := range msg.Yields {
		b = appendU32(b, uint32(y.Machine))
		if b, err = appendPayload(b, y.Payload); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// decodeSPMDRunReply decodes a frameSPMDRunOK body. m bounds the yield
// machine ids; the caller validates Recv/Reports lengths against the
// group it asked about.
func decodeSPMDRunReply(body []byte, m int) (*spmdRunReplyMsg, error) {
	d := &decoder{b: body}
	msg := &spmdRunReplyMsg{
		ShardWords:  int64(d.u64()),
		MemoryWords: int64(d.u64()),
		Recv:        d.int64Vec(),
	}
	nReports := int(d.u32())
	// Each report costs at least 17 bytes (sentWords, flags, dsts, errLen).
	if d.err == nil && uint64(nReports)*17 > uint64(len(d.b)) {
		d.fail("report count %d exceeds remaining %d bytes", nReports, len(d.b))
	}
	for i := 0; d.err == nil && i < nReports; i++ {
		r := mpc.SPMDMachineReport{SentWords: int64(d.u64())}
		flags := d.u8()
		if d.err == nil && flags > 3 {
			d.fail("report %d flags %d", i, flags)
		}
		r.SentAny = flags&1 != 0
		r.AllCentral = flags&2 != 0
		r.DistinctDsts = int(d.u32())
		r.Err = d.str()
		msg.Reports = append(msg.Reports, r)
	}
	nYields := int(d.u32())
	// Each yield costs at least 5 bytes (machine, kind).
	if d.err == nil && uint64(nYields)*5 > uint64(len(d.b)) {
		d.fail("yield count %d exceeds remaining %d bytes", nYields, len(d.b))
	}
	last := -1
	for i := 0; d.err == nil && i < nYields; i++ {
		mach := int(d.u32())
		if d.err == nil && (mach < 0 || mach >= m) {
			d.fail("yield machine %d out of cluster range [0,%d)", mach, m)
			break
		}
		if d.err == nil && mach <= last {
			d.fail("yield machines out of order: %d after %d", mach, last)
			break
		}
		last = mach
		p := d.payload()
		if d.err != nil {
			break
		}
		msg.Yields = append(msg.Yields, mpc.Yield{Machine: mach, Payload: p})
	}
	d.trailing("spmd runOK")
	if d.err != nil {
		return nil, d.err
	}
	return msg, nil
}

// appendSPMDStates encodes the group-state sequence shared by
// frameSPMDPush (after the session id) and frameSPMDSyncOK: a count then
// one machineState per machine in ascending id order from lo.
func appendSPMDStates(b []byte, lo int, sts []rng.State, pending [][]mpc.Message) ([]byte, error) {
	b = appendU32(b, uint32(len(sts)))
	var err error
	for i := range sts {
		if b, err = appendMachineState(b, lo+i, sts[i], pending[i]); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// spmdStates decodes the group-state sequence for machines [lo, hi) of
// an m-machine cluster.
func (d *decoder) spmdStates(m, lo, hi int) (sts []rng.State, pending [][]mpc.Message) {
	count := int(d.u32())
	if d.err == nil && count != hi-lo {
		d.fail("state for %d machines, want group [%d,%d)", count, lo, hi)
	}
	if d.err != nil {
		return nil, nil
	}
	sts = make([]rng.State, count)
	pending = make([][]mpc.Message, count)
	for i := 0; d.err == nil && i < count; i++ {
		sts[i], pending[i] = d.machineState(m, lo+i)
	}
	return sts, pending
}
