package transport

import (
	"bytes"
	"testing"

	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
)

// FuzzFrameDecode feeds arbitrary bytes through the frame reader and,
// when a frame parses, through the exchange-body decoder. The invariant
// under fuzz is purely defensive: no panic, no unbounded allocation
// (every length field is validated against the remaining buffer), and
// errors instead of garbage for malformed input. CI runs this target
// briefly on every push (fuzz smoke leg).
func FuzzFrameDecode(f *testing.F) {
	// Seed with a well-formed exchange frame…
	body := appendU32(nil, 3)
	body = appendU32(body, 1)
	body, err := appendMessage(body, 0, 1, mpc.Ints{7, 8})
	if err != nil {
		f.Fatal(err)
	}
	frame := appendFrameHeader(nil, frameExchange, len(body))
	f.Add(append(frame, body...))
	// …a hello, an empty goodbye, and some near-miss corruptions.
	hello := appendU32(appendU32(appendU32(nil, 4), 0), 4)
	f.Add(append(appendFrameHeader(nil, frameHello, len(hello)), hello...))
	f.Add(appendFrameHeader(nil, frameGoodbye, 0))
	f.Add([]byte{'p', 'c', ProtoVersion, frameExchange, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{'p', 'c', 99, frameHello, 0, 0, 0, 0})
	// …and well-formed SPMD control-plane frames so the fuzzer starts
	// inside the session codec's happy paths (frame types 9–23).
	setup := appendSPMDSetup(nil, &spmdSetupMsg{
		ID: "0123456789abcdef", M: 2, Self: 0,
		Groups: []Group{{Lo: 0, Hi: 2}}, Addrs: []string{"a:1"},
		SpaceName: "l2", Thresholds: []float64{1, 2},
		Parts: [][]metric.Point{{{1, 2}}, nil}, IDs: [][]int{{5}, nil},
	})
	f.Add(append(appendFrameHeader(nil, frameSPMDSetup, len(setup)), setup...))
	run := appendSPMDRun(nil, "0123456789abcdef", 3,
		&mpc.SPMDRun{Name: "degree/count", Prev: mpc.SPMDPrevCommit, I: []int{1}, F: []float64{0.5}})
	f.Add(append(appendFrameHeader(nil, frameSPMDRun, len(run)), run...))
	reply, err := appendSPMDRunReply(nil, &spmdRunReplyMsg{
		ShardWords: 2, MemoryWords: 64, Recv: []int64{1, 0},
		Reports: []mpc.SPMDMachineReport{{SentWords: 2, SentAny: true, DistinctDsts: 1}},
		Yields:  []mpc.Yield{{Machine: 1, Payload: mpc.Ints{7}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(appendFrameHeader(nil, frameSPMDRunOK, len(reply)), reply...))
	states, err := appendSPMDStates([]byte("0123456789abcdef"), 0,
		[]rng.State{{S: 1, Gamma: 3}, {S: 2, Gamma: 5, HaveGauss: true, Gauss: 0.5}},
		[][]mpc.Message{{{From: 1, Payload: mpc.Float(1.5)}}, nil})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append(appendFrameHeader(nil, frameSPMDPush, len(states)), states...))
	sync := append([]byte("0123456789abcdef"), mpc.SPMDPrevAbort)
	f.Add(append(appendFrameHeader(nil, frameSPMDSync, len(sync)), sync...))
	peerHello := appendU32([]byte("0123456789abcdef"), 1)
	f.Add(append(appendFrameHeader(nil, framePeerHello, len(peerHello)), peerHello...))
	f.Add(append(appendFrameHeader(nil, framePeerShard, len(body)), body...))

	f.Fuzz(func(t *testing.T, data []byte) {
		const frameCap = 1 << 16 // small cap so the fuzzer cannot make us allocate much
		typ, body, err := readFrame(bytes.NewReader(data), frameCap)
		if err != nil {
			return
		}
		if uint32(len(body)) > frameCap {
			t.Fatalf("frame body %d bytes exceeds cap %d", len(body), frameCap)
		}
		switch typ {
		case frameExchange, frameExchangeOK, framePeerShard:
			raw := body
			if typ == frameExchangeOK {
				d := &decoder{b: raw}
				d.u64()
				if d.err != nil {
					return
				}
				raw = d.b
			}
			_, words, err := decodeExchangeBody(raw, 16, 0, 0, func(src, dst int, p mpc.Payload) {
				if src < 0 || src >= 16 || dst < 0 || dst >= 16 {
					t.Fatalf("decoder delivered out-of-range ids src=%d dst=%d", src, dst)
				}
				if p == nil {
					t.Fatal("decoder delivered a nil payload")
				}
			})
			if err == nil && words < 0 {
				t.Fatalf("negative word total %d", words)
			}
		case frameSPMDSetup:
			msg, err := decodeSPMDSetup(body)
			if err != nil {
				return
			}
			// Canonical: whatever survives validation re-encodes to the
			// exact frame body (the SPMD worker relies on this to account
			// control bytes symmetrically with the coordinator).
			if re := appendSPMDSetup(nil, msg); !bytes.Equal(re, body) {
				t.Fatalf("spmd setup decode/encode not canonical:\n in  %x\n out %x", body, re)
			}
		case frameSPMDRun:
			id, round, req, err := decodeSPMDRun(body)
			if err != nil {
				return
			}
			if re := appendSPMDRun(nil, id, round, req); !bytes.Equal(re, body) {
				t.Fatalf("spmd run decode/encode not canonical:\n in  %x\n out %x", body, re)
			}
		case frameSPMDRunOK:
			msg, err := decodeSPMDRunReply(body, 16)
			if err != nil {
				return
			}
			re, err := appendSPMDRunReply(nil, msg)
			if err != nil {
				t.Fatalf("re-encoding decoded runOK: %v", err)
			}
			if !bytes.Equal(re, body) {
				t.Fatalf("spmd runOK decode/encode not canonical:\n in  %x\n out %x", body, re)
			}
		case frameSPMDPush, frameSPMDSyncOK:
			d := &decoder{b: body}
			var prefix []byte
			if typ == frameSPMDPush {
				prefix = []byte(d.sessionID())
			}
			const m, lo, hi = 4, 1, 3
			sts, pending := d.spmdStates(m, lo, hi)
			d.trailing("spmd states")
			if d.err != nil {
				return
			}
			re, err := appendSPMDStates(prefix, lo, sts, pending)
			if err != nil {
				t.Fatalf("re-encoding decoded states: %v", err)
			}
			if !bytes.Equal(re, body) {
				t.Fatalf("spmd states decode/encode not canonical:\n in  %x\n out %x", body, re)
			}
		case frameSPMDConnect, frameSPMDEnd, frameSPMDSync, framePeerHello:
			d := &decoder{b: body}
			d.sessionID()
			if typ == frameSPMDSync {
				if prev := d.u8(); d.err == nil && prev > mpc.SPMDPrevAbort {
					return // the server rejects this; nothing to re-encode
				}
			}
			if typ == framePeerHello {
				d.u32()
			}
			d.trailing("spmd control")
		}
	})
}

// FuzzPayloadDecode fuzzes the payload decoder directly — the tightest
// loop of the codec — and re-encodes whatever decodes to check the
// canonical-bytes property: decode(b) followed by encode must
// reproduce b exactly. That property is what lets the worker echo the
// request bytes back instead of re-encoding.
func FuzzPayloadDecode(f *testing.F) {
	seed, err := appendPayload(nil, mpc.Ints{1, -2, 3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	seed2, err := appendPayload(nil, mpc.Float(3.14))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed2)
	f.Add([]byte{kindPoints, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		d := &decoder{b: data}
		p := d.payload()
		if d.err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil payload decoded without error")
		}
		consumed := data[:len(data)-len(d.b)]
		re, err := appendPayload(nil, p)
		if err != nil {
			t.Fatalf("re-encoding decoded payload %#v: %v", p, err)
		}
		if !bytes.Equal(re, consumed) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", consumed, re)
		}
	})
}
