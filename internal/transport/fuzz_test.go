package transport

import (
	"bytes"
	"testing"

	"parclust/internal/mpc"
)

// FuzzFrameDecode feeds arbitrary bytes through the frame reader and,
// when a frame parses, through the exchange-body decoder. The invariant
// under fuzz is purely defensive: no panic, no unbounded allocation
// (every length field is validated against the remaining buffer), and
// errors instead of garbage for malformed input. CI runs this target
// briefly on every push (fuzz smoke leg).
func FuzzFrameDecode(f *testing.F) {
	// Seed with a well-formed exchange frame…
	body := appendU32(nil, 3)
	body = appendU32(body, 1)
	body, err := appendMessage(body, 0, 1, mpc.Ints{7, 8})
	if err != nil {
		f.Fatal(err)
	}
	frame := appendFrameHeader(nil, frameExchange, len(body))
	f.Add(append(frame, body...))
	// …a hello, an empty goodbye, and some near-miss corruptions.
	hello := appendU32(appendU32(appendU32(nil, 4), 0), 4)
	f.Add(append(appendFrameHeader(nil, frameHello, len(hello)), hello...))
	f.Add(appendFrameHeader(nil, frameGoodbye, 0))
	f.Add([]byte{'p', 'c', ProtoVersion, frameExchange, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{'p', 'c', 99, frameHello, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		const frameCap = 1 << 16 // small cap so the fuzzer cannot make us allocate much
		typ, body, err := readFrame(bytes.NewReader(data), frameCap)
		if err != nil {
			return
		}
		if uint32(len(body)) > frameCap {
			t.Fatalf("frame body %d bytes exceeds cap %d", len(body), frameCap)
		}
		if typ == frameExchange || typ == frameExchangeOK {
			raw := body
			if typ == frameExchangeOK {
				d := &decoder{b: raw}
				d.u64()
				if d.err != nil {
					return
				}
				raw = d.b
			}
			_, words, err := decodeExchangeBody(raw, 16, 0, 0, func(src, dst int, p mpc.Payload) {
				if src < 0 || src >= 16 || dst < 0 || dst >= 16 {
					t.Fatalf("decoder delivered out-of-range ids src=%d dst=%d", src, dst)
				}
				if p == nil {
					t.Fatal("decoder delivered a nil payload")
				}
			})
			if err == nil && words < 0 {
				t.Fatalf("negative word total %d", words)
			}
		}
	})
}

// FuzzPayloadDecode fuzzes the payload decoder directly — the tightest
// loop of the codec — and re-encodes whatever decodes to check the
// canonical-bytes property: decode(b) followed by encode must
// reproduce b exactly. That property is what lets the worker echo the
// request bytes back instead of re-encoding.
func FuzzPayloadDecode(f *testing.F) {
	seed, err := appendPayload(nil, mpc.Ints{1, -2, 3})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	seed2, err := appendPayload(nil, mpc.Float(3.14))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed2)
	f.Add([]byte{kindPoints, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		d := &decoder{b: data}
		p := d.payload()
		if d.err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil payload decoded without error")
		}
		consumed := data[:len(data)-len(d.b)]
		re, err := appendPayload(nil, p)
		if err != nil {
			t.Fatalf("re-encoding decoded payload %#v: %v", p, err)
		}
		if !bytes.Equal(re, consumed) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", consumed, re)
		}
	})
}
