package transport

// Worker-side SPMD sessions: the Server half of SPMD superstep
// execution (docs/TRANSPORT.md, "SPMD supersteps"). A session hosts an
// mpc.Replica for one machine group of one cluster, executes registered
// superstep bodies against the group's held state, and moves cross-group
// messages directly between workers over a peer mesh — the coordinator
// link carries only control frames. Sessions are keyed by the
// coordinator-chosen 16-byte id so peer shard traffic can be routed to
// the right replica; each session is owned by the coordinator connection
// that set it up and is torn down with it.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"parclust/internal/instance"
	"parclust/internal/mpc"
	"parclust/internal/probe"
	"parclust/internal/rng"
)

// spmdPeerWait bounds how long a superstep waits for the round's shards
// from every peer worker before failing the session: peers are driven by
// the same coordinator, so anything past this is a wedged or dead fleet.
const spmdPeerWait = 30 * time.Second

// peerMsg is one staged cross-group message: the destination machine and
// the sender-tagged payload.
type peerMsg struct {
	dst int
	msg mpc.Message
}

// spmdWorkerSession is one worker's half of an SPMD session.
type spmdWorkerSession struct {
	id       string
	m        int
	self     int
	groups   []Group
	addrs    []string
	dstOwner []int // machine id -> owning group index
	rep      *mpc.Replica

	// peers[g] is this worker's outbound shard connection to group g's
	// worker (nil for self), dialed on frameSPMDConnect. Only the
	// coordinator-connection goroutine writes to them: the coordinator
	// serializes runs, so no lock is needed.
	peers []net.Conn

	// mu guards the inbound shard staging written by the peer-serving
	// goroutines and read by the run handler; cond signals arrivals.
	mu      sync.Mutex
	cond    *sync.Cond
	inbound map[uint32]map[int][]peerMsg // round -> source group -> shards
	dead    bool
}

func (ws *spmdWorkerSession) group() Group { return ws.groups[ws.self] }

// deliverShards stages one peer's shard set for one round, waking any
// waiting run handler. A duplicate (round, group) delivery is a protocol
// violation.
func (ws *spmdWorkerSession) deliverShards(round uint32, srcGroup int, shards []peerMsg) error {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if ws.dead {
		return fmt.Errorf("spmd session %x is closed", ws.id)
	}
	byGroup := ws.inbound[round]
	if byGroup == nil {
		byGroup = make(map[int][]peerMsg)
		ws.inbound[round] = byGroup
	}
	if _, dup := byGroup[srcGroup]; dup {
		return fmt.Errorf("duplicate shard delivery for round %d from group %d", round, srcGroup)
	}
	byGroup[srcGroup] = shards
	ws.cond.Broadcast()
	return nil
}

// awaitShards blocks until every peer group's shard set for round has
// arrived, then claims and returns them.
func (ws *spmdWorkerSession) awaitShards(round uint32) (map[int][]peerMsg, error) {
	deadline := time.Now().Add(spmdPeerWait)
	timer := time.AfterFunc(spmdPeerWait, func() {
		ws.mu.Lock()
		ws.cond.Broadcast()
		ws.mu.Unlock()
	})
	defer timer.Stop()
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for {
		if ws.dead {
			return nil, fmt.Errorf("spmd session %x closed while waiting for round %d shards", ws.id, round)
		}
		if byGroup := ws.inbound[round]; len(byGroup) == len(ws.groups)-1 {
			delete(ws.inbound, round)
			return byGroup, nil
		}
		if time.Now().After(deadline) {
			got := len(ws.inbound[round])
			return nil, fmt.Errorf("round %d shards: %d/%d peer groups after %v", round, got, len(ws.groups)-1, spmdPeerWait)
		}
		ws.cond.Wait()
	}
}

// teardown closes the session's outbound peer connections and wakes any
// waiters. Idempotent.
func (ws *spmdWorkerSession) teardown() {
	ws.mu.Lock()
	if ws.dead {
		ws.mu.Unlock()
		return
	}
	ws.dead = true
	ws.cond.Broadcast()
	ws.mu.Unlock()
	for _, conn := range ws.peers {
		if conn != nil {
			conn.Close()
		}
	}
}

// spmdRegister adds a session to the server's routing table.
func (s *Server) spmdRegister(ws *spmdWorkerSession) error {
	s.spmdMu.Lock()
	defer s.spmdMu.Unlock()
	if s.spmd == nil {
		s.spmd = make(map[string]*spmdWorkerSession)
	}
	if _, dup := s.spmd[ws.id]; dup {
		return fmt.Errorf("spmd session %x already exists", ws.id)
	}
	s.spmd[ws.id] = ws
	return nil
}

// spmdLookup resolves a session id, or nil.
func (s *Server) spmdLookup(id string) *spmdWorkerSession {
	s.spmdMu.Lock()
	defer s.spmdMu.Unlock()
	return s.spmd[id]
}

// spmdDrop tears a session down and removes it from the routing table.
// Idempotent — both frameSPMDEnd and the owning connection's exit call
// it.
func (s *Server) spmdDrop(id string) {
	s.spmdMu.Lock()
	ws := s.spmd[id]
	delete(s.spmd, id)
	s.spmdMu.Unlock()
	if ws != nil {
		ws.teardown()
	}
}

// serveSPMDSetup creates a session from a frameSPMDSetup body: resolve
// the metric space, rebuild the replicated env (including this process's
// own probe context — the probe contract makes a worker-built context,
// or none, byte-identical to the driver's), and host a replica for this
// worker's group. Peer dialing waits for frameSPMDConnect.
func (s *Server) serveSPMDSetup(conn net.Conn, body []byte) (id string, err error) {
	msg, err := decodeSPMDSetup(body)
	if err != nil {
		return "", err
	}
	if len(msg.ID) != spmdIDLen {
		return "", fmt.Errorf("spmd setup: session id of %d bytes", len(msg.ID))
	}
	space, ok := mpc.SPMDResolveSpace(msg.SpaceName)
	if !ok {
		return "", fmt.Errorf("spmd setup: space %q is not replicable", msg.SpaceName)
	}
	env := &mpc.Env{
		SpaceName:  msg.SpaceName,
		Space:      space,
		Parts:      msg.Parts,
		IDs:        msg.IDs,
		Thresholds: msg.Thresholds,
	}
	in, err := instance.NewWithIDs(space, msg.Parts, msg.IDs)
	if err != nil {
		return "", fmt.Errorf("spmd setup: rebuilding instance: %w", err)
	}
	env.Key = in
	env.Local = probe.NewContext(in, probe.Options{Thresholds: msg.Thresholds})
	grp := msg.Groups[msg.Self]
	rep, err := mpc.NewReplica(msg.M, grp.Lo, grp.Hi, env)
	if err != nil {
		return "", fmt.Errorf("spmd setup: %w", err)
	}
	ws := &spmdWorkerSession{
		id:       msg.ID,
		m:        msg.M,
		self:     msg.Self,
		groups:   msg.Groups,
		addrs:    msg.Addrs,
		dstOwner: make([]int, msg.M),
		rep:      rep,
		peers:    make([]net.Conn, len(msg.Groups)),
		inbound:  make(map[uint32]map[int][]peerMsg),
	}
	ws.cond = sync.NewCond(&ws.mu)
	for g, grp := range msg.Groups {
		for i := grp.Lo; i < grp.Hi; i++ {
			ws.dstOwner[i] = g
		}
	}
	if err := s.spmdRegister(ws); err != nil {
		return "", err
	}
	if err := s.reply(conn, frameSPMDSetupOK, nil); err != nil {
		s.spmdDrop(msg.ID)
		return "", err
	}
	return msg.ID, nil
}

// serveSPMDConnect dials the session's peer mesh. The coordinator sends
// it only after every worker answered setupOK, so the peer hellos below
// always find their session.
func (s *Server) serveSPMDConnect(conn net.Conn, body []byte) error {
	d := &decoder{b: body}
	id := d.sessionID()
	d.trailing("spmd connect")
	if d.err != nil {
		return d.err
	}
	ws := s.spmdLookup(id)
	if ws == nil {
		return fmt.Errorf("spmd connect: unknown session %x", id)
	}
	for g := range ws.groups {
		if g == ws.self || ws.peers[g] != nil {
			continue
		}
		pc, err := net.DialTimeout("tcp", ws.addrs[g], spmdPeerWait)
		if err != nil {
			return fmt.Errorf("dialing peer group %d at %s: %w", g, ws.addrs[g], err)
		}
		hello := append([]byte(nil), ws.id...)
		hello = appendU32(hello, uint32(ws.self))
		if err := writeFrame(pc, framePeerHello, hello); err != nil {
			pc.Close()
			return fmt.Errorf("peer group %d hello: %w", g, err)
		}
		typ, rbody, err := readFrame(pc, s.cfg.MaxFrameBytes)
		if err != nil {
			pc.Close()
			return fmt.Errorf("peer group %d hello reply: %w", g, err)
		}
		if typ == frameError {
			pc.Close()
			return fmt.Errorf("peer group %d rejected hello: %s", g, rbody)
		}
		if typ != framePeerHelloOK {
			pc.Close()
			return fmt.Errorf("peer group %d hello reply: frame type %d, want peerHelloOK", g, typ)
		}
		ws.peers[g] = pc
	}
	return s.reply(conn, frameSPMDConnectOK, nil)
}

// serveSPMDPush installs pushed machine state into the session's
// replica.
func (s *Server) serveSPMDPush(conn net.Conn, body []byte) error {
	d := &decoder{b: body}
	id := d.sessionID()
	if d.err != nil {
		return d.err
	}
	ws := s.spmdLookup(id)
	if ws == nil {
		return fmt.Errorf("spmd push: unknown session %x", id)
	}
	grp := ws.group()
	sts, pending := d.spmdStates(ws.m, grp.Lo, grp.Hi)
	d.trailing("spmd push")
	if d.err != nil {
		return d.err
	}
	for i := range sts {
		if err := ws.rep.SetState(grp.Lo+i, sts[i], pending[i]); err != nil {
			return err
		}
	}
	return s.reply(conn, frameSPMDPushOK, nil)
}

// serveSPMDSync resolves staged messages and returns the group's machine
// state to the coordinator.
func (s *Server) serveSPMDSync(conn net.Conn, body []byte) error {
	d := &decoder{b: body}
	id := d.sessionID()
	prev := d.u8()
	d.trailing("spmd sync")
	if d.err != nil {
		return d.err
	}
	ws := s.spmdLookup(id)
	if ws == nil {
		return fmt.Errorf("spmd sync: unknown session %x", id)
	}
	if err := applyPrev(ws.rep, prev); err != nil {
		return err
	}
	grp := ws.group()
	sts := make([]rng.State, grp.Hi-grp.Lo)
	pending := make([][]mpc.Message, grp.Hi-grp.Lo)
	for i := range sts {
		var err error
		if sts[i], pending[i], err = ws.rep.State(grp.Lo + i); err != nil {
			return err
		}
	}
	resp, err := appendSPMDStates(nil, grp.Lo, sts, pending)
	if err != nil {
		return err
	}
	return s.reply(conn, frameSPMDSyncOK, resp)
}

// applyPrev resolves the previous round's staged messages.
func applyPrev(rep *mpc.Replica, prev byte) error {
	switch prev {
	case mpc.SPMDPrevNone:
	case mpc.SPMDPrevCommit:
		rep.CommitStaged()
	case mpc.SPMDPrevAbort:
		rep.AbortStaged()
	default:
		return fmt.Errorf("staged outcome %d", prev)
	}
	return nil
}

// serveSPMDRun executes one registered superstep against the session's
// replica: resolve the staged outcome, run the body, ship cross-group
// messages to peers, stage the next round's mailboxes in ascending
// source-group order, and answer with the group's accounting.
func (s *Server) serveSPMDRun(conn net.Conn, body []byte) error {
	id, round, req, err := decodeSPMDRun(body)
	if err != nil {
		return err
	}
	ws := s.spmdLookup(id)
	if ws == nil {
		return fmt.Errorf("spmd run: unknown session %x", id)
	}
	if err := applyPrev(ws.rep, req.Prev); err != nil {
		return fmt.Errorf("spmd run %q: %w", req.Name, err)
	}
	rr, err := ws.rep.RunBody(req.Name, mpc.Args{I: req.I, F: req.F}, req.Local)
	if err != nil {
		return fmt.Errorf("spmd run %q: %w", req.Name, err)
	}
	reply := &spmdRunReplyMsg{
		MemoryWords: rr.Mem,
		Recv:        rr.Recv,
		Reports:     rr.Acct,
		Yields:      rr.Yields,
	}
	if !req.Local {
		if err := ws.shipAndStage(round, rr, reply); err != nil {
			return fmt.Errorf("spmd run %q round %d: %w", req.Name, round, err)
		}
	}
	resp, err := appendSPMDRunReply(nil, reply)
	if err != nil {
		return fmt.Errorf("spmd run %q: encoding reply: %w", req.Name, err)
	}
	return s.reply(conn, frameSPMDRunOK, resp)
}

// shipAndStage moves one round's messages: cross-group messages go to
// the peer mesh (one shard frame per peer, shipped even when empty —
// the frame is the barrier that tells the peer this group is done
// sending), then the next round's mailboxes are staged in ascending
// source-group order, which keeps them sorted by sender because groups
// are contiguous ascending machine ranges.
func (ws *spmdWorkerSession) shipAndStage(round uint32, rr *mpc.ReplicaRound, reply *spmdRunReplyMsg) error {
	// Encode per-peer shard frames. rr.Shards is in ascending sender
	// order; a single pass bucketed by owner preserves that per group.
	bodies := make([][]byte, len(ws.groups))
	counts := make([]uint32, len(ws.groups))
	for g := range ws.groups {
		if g == ws.self {
			continue
		}
		b := appendU32(nil, round)
		bodies[g] = appendU32(b, 0) // msgCount, patched below
	}
	for _, sh := range rr.Shards {
		g := ws.dstOwner[sh.Dst]
		b, err := appendMessage(bodies[g], sh.Src, sh.Dst, sh.Payload)
		if err != nil {
			return err
		}
		bodies[g] = b
		counts[g]++
		reply.ShardWords += int64(sh.Payload.Words())
	}
	for g := range ws.groups {
		if g == ws.self {
			continue
		}
		b := bodies[g]
		b[4] = byte(counts[g] >> 24)
		b[5] = byte(counts[g] >> 16)
		b[6] = byte(counts[g] >> 8)
		b[7] = byte(counts[g])
		if ws.peers[g] == nil {
			return fmt.Errorf("no peer connection to group %d", g)
		}
		if err := writeFrame(ws.peers[g], framePeerShard, b); err != nil {
			return fmt.Errorf("shipping shard to group %d: %w", g, err)
		}
	}
	var inbound map[int][]peerMsg
	if len(ws.groups) > 1 {
		var err error
		if inbound, err = ws.awaitShards(round); err != nil {
			return err
		}
	}
	grp := ws.group()
	for g := range ws.groups {
		if g == ws.self {
			for i, msgs := range rr.Local {
				if len(msgs) == 0 {
					continue
				}
				if err := ws.rep.Stage(grp.Lo+i, msgs); err != nil {
					return err
				}
			}
			continue
		}
		for _, pm := range inbound[g] {
			if err := ws.rep.Stage(pm.dst, []mpc.Message{pm.msg}); err != nil {
				return err
			}
		}
	}
	return nil
}

// servePeer runs one inbound peer-mesh connection: validate the hello,
// then stage every shard frame into the session until the dialer closes.
// Called with the already-read hello body.
func (s *Server) servePeer(conn net.Conn, body []byte) {
	peer := conn.RemoteAddr()
	d := &decoder{b: body}
	id := d.sessionID()
	srcGroup := int(d.u32())
	d.trailing("peer hello")
	if d.err != nil {
		s.logf("peer %v: hello: %v", peer, d.err)
		s.fail(conn, d.err)
		return
	}
	ws := s.spmdLookup(id)
	if ws == nil {
		err := fmt.Errorf("peer hello: unknown session %x", id)
		s.logf("peer %v: %v", peer, err)
		s.fail(conn, err)
		return
	}
	if srcGroup < 0 || srcGroup >= len(ws.groups) || srcGroup == ws.self {
		err := fmt.Errorf("peer hello: source group %d invalid for session %x", srcGroup, id)
		s.logf("peer %v: %v", peer, err)
		s.fail(conn, err)
		return
	}
	if err := s.reply(conn, framePeerHelloOK, nil); err != nil {
		return
	}
	src := ws.groups[srcGroup]
	grp := ws.group()
	for {
		typ, sbody, err := readFrame(conn, s.cfg.MaxFrameBytes)
		if err != nil {
			// EOF here is the dialer tearing the session down.
			return
		}
		s.frames.Add(1)
		s.bytesIn.Add(int64(len(sbody)))
		if typ != framePeerShard {
			s.fail(conn, fmt.Errorf("frame type %d on peer connection, want peerShard", typ))
			return
		}
		var shards []peerMsg
		round, words, err := decodeExchangeBody(sbody, ws.m, grp.Lo, grp.Hi, func(srcID, dst int, p mpc.Payload) {
			shards = append(shards, peerMsg{dst: dst, msg: mpc.Message{From: srcID, Payload: p}})
		})
		if err == nil {
			for _, pm := range shards {
				if pm.msg.From < src.Lo || pm.msg.From >= src.Hi {
					err = fmt.Errorf("shard sender %d outside group %d = [%d,%d)", pm.msg.From, srcGroup, src.Lo, src.Hi)
					break
				}
			}
		}
		if err == nil {
			s.words.Add(words)
			err = ws.deliverShards(uint32(round), srcGroup, shards)
		}
		if err != nil {
			s.logf("peer %v: shard: %v", peer, err)
			s.fail(conn, err)
			return
		}
	}
}

// reply writes a response frame, counting it into the byte stats.
func (s *Server) reply(conn net.Conn, typ byte, body []byte) error {
	s.bytesOut.Add(int64(len(body)))
	return writeFrame(conn, typ, body)
}
