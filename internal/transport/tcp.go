package transport

// The coordinator side of the TCP backend: a Client implements
// mpc.Transport over persistent connections to kclusterd workers.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"parclust/internal/mpc"
)

// DialConfig configures a coordinator's connection to a worker fleet.
type DialConfig struct {
	// Workers are the addresses ("host:port") of the kclusterd workers,
	// in machine-group order: worker w owns Partition(Machines,
	// len(Workers))[w].
	Workers []string
	// Machines is the cluster size m. Must match the mpc.NewCluster the
	// transport is installed into.
	Machines int
	// MaxFrameBytes caps one frame's body; 0 means
	// DefaultMaxFrameBytes. The effective cap per worker is the lesser
	// of this and the cap the worker advertises in its helloOK.
	MaxFrameBytes uint32
	// DialTimeout bounds each dial attempt; 0 means 5 seconds.
	DialTimeout time.Duration
	// Retries is how many times a failed worker exchange is retried
	// with a fresh connection before the round fails; 0 means 2.
	// Workers are stateless between rounds, so redial + resend is
	// always safe (see docs/TRANSPORT.md, "Failure handling").
	Retries int
}

// ClientStats are a coordinator's cumulative transport counters, the
// per-backend observability surface documented in docs/OBSERVABILITY.md.
type ClientStats struct {
	// Backend is the transport name ("tcp").
	Backend string
	// Workers is the fleet size.
	Workers int
	// Exchanges counts completed Exchange calls (round barriers).
	Exchanges int64
	// FramesSent counts request frames written across all workers.
	FramesSent int64
	// BytesSent / BytesRecv count frame bodies shipped and received.
	BytesSent int64
	BytesRecv int64
	// WordsOnWire is the total payload words the workers metered on the
	// wire, cross-checked every round against the driver's own
	// accounting of the same traffic.
	WordsOnWire int64
	// Retries counts per-worker exchange attempts beyond the first;
	// Reconnects counts fresh connections dialed after the initial
	// handshakes.
	Retries    int64
	Reconnects int64
}

// workerConn is the coordinator's view of one worker: its address, the
// machine group it owns, and the current connection (nil after a
// failure until the next redial).
type workerConn struct {
	addr     string
	group    Group
	conn     net.Conn
	maxFrame uint32 // min(client cap, worker-advertised cap)
}

// Client is the tcp mpc.Transport: it delivers every round's messages
// through a fleet of worker processes, one request/response frame
// exchange per worker per round. Install it with mpc.WithTransport;
// a forked cluster shares its parent's Client, so Exchange serializes
// concurrent callers internally.
type Client struct {
	cfg      DialConfig
	m        int
	dstOwner []int // machine id -> worker index
	workers  []*workerConn

	mu    sync.Mutex // serializes Exchange/Close (fork-shared)
	stats ClientStats

	// roundData/roundCtrl accrue the wire-traffic split since the last
	// TakeRoundWire drain (the mpc.WireMeter contract): payload words
	// shipped over the coordinator link versus everything else — frame
	// headers, round tags, metering fields, and the delivery echo — in
	// words. SPMD rounds bypass these (their split rides the session
	// reply); only coordinator-compute Exchange accrues here.
	roundData int64
	roundCtrl int64

	// scratch reused across rounds: per-worker encoded request bodies.
	reqs [][]byte
}

// Dial connects to every worker in cfg, performs the hello handshake
// (announcing the cluster size and each worker's machine group), and
// returns a ready Transport. Close releases the connections.
func Dial(cfg DialConfig) (*Client, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("transport: no worker addresses")
	}
	if cfg.Machines < 1 {
		return nil, fmt.Errorf("transport: machines must be >= 1, got %d", cfg.Machines)
	}
	if cfg.MaxFrameBytes == 0 {
		cfg.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}

	groups := Partition(cfg.Machines, len(cfg.Workers))
	c := &Client{
		cfg:      cfg,
		m:        cfg.Machines,
		dstOwner: make([]int, cfg.Machines),
		workers:  make([]*workerConn, len(cfg.Workers)),
		reqs:     make([][]byte, len(cfg.Workers)),
		stats:    ClientStats{Backend: "tcp", Workers: len(cfg.Workers)},
	}
	for w, g := range groups {
		c.workers[w] = &workerConn{addr: cfg.Workers[w], group: g}
		for id := g.Lo; id < g.Hi; id++ {
			c.dstOwner[id] = w
		}
	}
	for _, wc := range c.workers {
		if err := c.connect(wc); err != nil {
			c.Close()
			return nil, err
		}
	}
	return c, nil
}

// Name returns "tcp"; it tags trace rows and RoundStats for runs over
// this backend.
func (c *Client) Name() string { return "tcp" }

// Stats returns a snapshot of the coordinator-side counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// connect dials one worker and performs the hello handshake. Callers
// hold c.mu (or are in Dial, before the Client is shared).
func (c *Client) connect(wc *workerConn) error {
	conn, err := net.DialTimeout("tcp", wc.addr, c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("dialing worker %s: %w", wc.addr, err)
	}
	hello := appendU32(nil, uint32(c.m))
	hello = appendU32(hello, uint32(wc.group.Lo))
	hello = appendU32(hello, uint32(wc.group.Hi))
	if err := writeFrame(conn, frameHello, hello); err != nil {
		conn.Close()
		return fmt.Errorf("worker %s hello: %w", wc.addr, err)
	}
	typ, body, err := readFrame(conn, c.cfg.MaxFrameBytes)
	if err != nil {
		conn.Close()
		return fmt.Errorf("worker %s hello reply: %w", wc.addr, err)
	}
	if typ == frameError {
		conn.Close()
		return fmt.Errorf("worker %s rejected hello: %s", wc.addr, body)
	}
	if typ != frameHelloOK || len(body) != 4 {
		conn.Close()
		return fmt.Errorf("worker %s hello reply: frame type %d body %d bytes, want helloOK", wc.addr, typ, len(body))
	}
	d := &decoder{b: body}
	workerCap := d.u32()
	wc.maxFrame = min(c.cfg.MaxFrameBytes, workerCap)
	wc.conn = conn
	return nil
}

// Exchange delivers one round: it buckets the queued messages by owning
// worker — walking sources in ascending machine id, which preserves the
// inbox sorted-by-sender invariant the in-process backend provides —
// ships each bucket to its worker concurrently, and appends each
// worker's echoed, metered shard to the pending inboxes. Worker machine
// groups are disjoint, so the per-worker goroutines write disjoint
// pending slots. An empty bucket is still shipped: the round-numbered
// frame is the barrier that keeps coordinator and workers in lockstep.
func (c *Client) Exchange(round int, outboxes [][]mpc.Outbound, pending [][]mpc.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Encode per-worker request bodies. Counts are patched in after the
	// walk so the traffic is encoded in a single pass.
	counts := make([]uint32, len(c.workers))
	for w := range c.workers {
		b := c.reqs[w][:0]
		b = appendU32(b, uint32(round))
		b = appendU32(b, 0) // msgCount, patched below
		c.reqs[w] = b
	}
	var wireWords int64
	for src, box := range outboxes {
		for _, om := range box {
			w := c.dstOwner[om.Dst]
			b, err := appendMessage(c.reqs[w], src, om.Dst, om.Payload)
			if err != nil {
				return err
			}
			c.reqs[w] = b
			counts[w]++
			wireWords += int64(om.Payload.Words())
		}
	}
	for w := range c.workers {
		b := c.reqs[w]
		b[4] = byte(counts[w] >> 24)
		b[5] = byte(counts[w] >> 16)
		b[6] = byte(counts[w] >> 8)
		b[7] = byte(counts[w])
	}

	// One request/response per worker, concurrently.
	type result struct {
		words   int64
		bytesIn int64
		retries int64
		redials int64
		err     error
	}
	results := make([]result, len(c.workers))
	var wg sync.WaitGroup
	for w, wc := range c.workers {
		wg.Add(1)
		go func(w int, wc *workerConn) {
			defer wg.Done()
			res := &results[w]
			res.words, res.bytesIn, res.retries, res.redials, res.err =
				c.exchangeWorker(wc, round, c.reqs[w], pending)
		}(w, wc)
	}
	wg.Wait()

	var firstErr error
	for w, res := range results {
		c.stats.FramesSent += 1 + res.retries
		c.stats.BytesSent += int64(len(c.reqs[w]))
		c.stats.BytesRecv += res.bytesIn
		c.stats.WordsOnWire += res.words
		c.stats.Retries += res.retries
		c.stats.Reconnects += res.redials
		if res.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker %s: %w", c.workers[w].addr, res.err)
		}
	}
	if firstErr != nil {
		return firstErr
	}

	// Wire-level metering cross-check: the words the workers decoded
	// must equal the words the driver queued.
	var metered int64
	for _, res := range results {
		metered += res.words
	}
	if metered != wireWords {
		return fmt.Errorf("wire metering mismatch: workers measured %d words, driver queued %d", metered, wireWords)
	}
	// Accrue the round's wire split: the queued payload words are the
	// data plane; codec envelopes, frame headers, and the delivery echo
	// are coordinator-link overhead. Metered over the logical round (one
	// request/reply per worker) so the split is canonical under retries.
	var frameBytes int64
	for w, res := range results {
		frameBytes += int64(2*headerLen) + int64(len(c.reqs[w])) + res.bytesIn
	}
	c.roundData += wireWords
	if overhead := frameBytes - 8*wireWords; overhead > 0 {
		c.roundCtrl += ctrlWords(overhead)
	}
	c.stats.Exchanges++
	return nil
}

// TakeRoundWire implements mpc.WireMeter: it returns and resets the
// data/control wire-word split accrued since the last drain. Superstep
// drains it around each delivery so the split lands on that round's
// RoundStats.
func (c *Client) TakeRoundWire() (dataWords, ctrlWords int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	dataWords, ctrlWords = c.roundData, c.roundCtrl
	c.roundData, c.roundCtrl = 0, 0
	return dataWords, ctrlWords
}

// exchangeWorker runs one worker's round exchange with redial + resend
// on connection failure. It decodes the response shard directly into
// pending; the worker's machine group is disjoint from every other
// worker's, so this is safe under the caller's concurrency.
func (c *Client) exchangeWorker(wc *workerConn, round int, req []byte, pending [][]mpc.Message) (words, bytesIn, retries, redials int64, err error) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			retries++
		}
		if wc.conn == nil {
			if err := c.connect(wc); err != nil {
				if attempt < c.cfg.Retries {
					continue
				}
				return 0, 0, retries, redials, err
			}
			redials++
		}
		w, b, err := c.tryExchange(wc, round, req, pending)
		if err == nil {
			return w, b, retries, redials, nil
		}
		wc.conn.Close()
		wc.conn = nil
		if attempt >= c.cfg.Retries {
			return 0, 0, retries, redials, err
		}
	}
}

// tryExchange performs one request/response on a live connection and,
// on success, appends the worker's echoed shard to pending.
func (c *Client) tryExchange(wc *workerConn, round int, req []byte, pending [][]mpc.Message) (words, bytesIn int64, err error) {
	if err := writeFrame(wc.conn, frameExchange, req); err != nil {
		return 0, 0, fmt.Errorf("sending round %d: %w", round, err)
	}
	typ, body, err := readFrame(wc.conn, wc.maxFrame)
	if err != nil {
		return 0, 0, fmt.Errorf("reading round %d reply: %w", round, err)
	}
	bytesIn = int64(len(body))
	if typ == frameError {
		return 0, bytesIn, fmt.Errorf("worker error: %s", body)
	}
	if typ != frameExchangeOK {
		return 0, bytesIn, fmt.Errorf("round %d reply: frame type %d, want exchangeOK", round, typ)
	}
	d := &decoder{b: body}
	metered := int64(d.u64())
	if d.err != nil {
		return 0, bytesIn, d.err
	}
	// Decode into a local shard first and append to pending only after
	// the whole reply validates, so a retried exchange can never
	// double-deliver a prefix of a malformed reply.
	type inMsg struct {
		dst int
		msg mpc.Message
	}
	var shard []inMsg
	gotRound, words, err := decodeExchangeBody(d.b, c.m, wc.group.Lo, wc.group.Hi, func(src, dst int, p mpc.Payload) {
		shard = append(shard, inMsg{dst: dst, msg: mpc.Message{From: src, Payload: p}})
	})
	if err != nil {
		return 0, bytesIn, err
	}
	if gotRound != round {
		return 0, bytesIn, fmt.Errorf("reply tagged round %d, want %d", gotRound, round)
	}
	if words != metered {
		return 0, bytesIn, fmt.Errorf("reply carries %d words but worker metered %d", words, metered)
	}
	for _, im := range shard {
		pending[im.dst] = append(pending[im.dst], im.msg)
	}
	return words, bytesIn, nil
}

// SeverConnections closes every live worker connection without closing
// the Client: the next Exchange recovers by redialing and resending.
// This is the transport-level fault-injection hook — the parity suite
// uses it to pin that a connection cut mid-algorithm maps onto the
// fault model's drop + retransmission without disturbing results.
func (c *Client) SeverConnections() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, wc := range c.workers {
		if wc.conn != nil {
			wc.conn.Close()
		}
	}
}

// Close sends a goodbye to every connected worker and closes the
// connections. The Client is unusable afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, wc := range c.workers {
		if wc != nil && wc.conn != nil {
			_ = writeFrame(wc.conn, frameGoodbye, nil)
			wc.conn.Close()
			wc.conn = nil
		}
	}
	return nil
}
