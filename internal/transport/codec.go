package transport

// Wire codec for the mpc payload vocabulary (internal/mpc/messages.go).
// The encoding is a hand-rolled binary format rather than gob: every
// value is fixed-width big-endian, so a payload's wire size is an exact
// affine function of its Words() count, the bytes are canonical (the
// same payload always encodes to the same bytes, which the parity suite
// relies on), and the decoder can bound every allocation against the
// remaining buffer before it allocates — malformed or adversarial
// frames fail cleanly instead of ballooning memory (see the fuzz
// targets in fuzz_test.go).
//
// Layout, per message:
//
//	u32 src | u32 dst | u8 kind | payload
//
// Payload layouts by kind (all integers two's-complement int64 in u64,
// all floats IEEE-754 bits in u64):
//
//	kindPoints         u32 npts { u32 dim, dim×u64 } ...
//	kindTaggedPoints   u64 tag, points
//	kindIndexedPoints  u64vec ids, points
//	kindWeightedPoints u64 tag, u64vec ids, points, u64vec ws
//	kindInts           u64vec
//	kindFloats         u64vec
//	kindInt            u64
//	kindFloat          u64
//	kindKeyedFloats    u64vec keys, u64vec vals
//
// where u64vec is u32 len followed by len×u64. The vocabulary is
// closed: adding a payload type to messages.go means adding a kind
// here, a case to both switches, and a round-trip property test to
// codec_test.go (docs/TRANSPORT.md, "Wire format").

import (
	"encoding/binary"
	"fmt"
	"math"

	"parclust/internal/metric"
	"parclust/internal/mpc"
)

// Payload kind tags. The zero value is reserved so a zeroed buffer
// never decodes as a valid message.
const (
	kindPoints         = 1
	kindTaggedPoints   = 2
	kindIndexedPoints  = 3
	kindWeightedPoints = 4
	kindInts           = 5
	kindFloats         = 6
	kindInt            = 7
	kindFloat          = 8
	kindKeyedFloats    = 9
)

func appendU32(b []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(b, v) }

func appendIntVec(b []byte, vs []int) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU64(b, uint64(int64(v)))
	}
	return b
}

func appendFloatVec(b []byte, vs []float64) []byte {
	b = appendU32(b, uint32(len(vs)))
	for _, v := range vs {
		b = appendU64(b, math.Float64bits(v))
	}
	return b
}

func appendPoints(b []byte, pts []metric.Point) []byte {
	b = appendU32(b, uint32(len(pts)))
	for _, p := range pts {
		b = appendFloatVec(b, p)
	}
	return b
}

// appendPayload encodes p (kind tag plus body) onto b. Unknown payload
// types are an error: the wire vocabulary is the closed set defined in
// internal/mpc/messages.go.
func appendPayload(b []byte, p mpc.Payload) ([]byte, error) {
	switch v := p.(type) {
	case mpc.Points:
		b = append(b, kindPoints)
		b = appendPoints(b, v.Pts)
	case mpc.TaggedPoints:
		b = append(b, kindTaggedPoints)
		b = appendU64(b, uint64(int64(v.Tag)))
		b = appendPoints(b, v.Pts)
	case mpc.IndexedPoints:
		b = append(b, kindIndexedPoints)
		b = appendIntVec(b, v.IDs)
		b = appendPoints(b, v.Pts)
	case mpc.WeightedPoints:
		b = append(b, kindWeightedPoints)
		b = appendU64(b, uint64(int64(v.Tag)))
		b = appendIntVec(b, v.IDs)
		b = appendPoints(b, v.Pts)
		b = appendFloatVec(b, v.Ws)
	case mpc.Ints:
		b = append(b, kindInts)
		b = appendIntVec(b, v)
	case mpc.Floats:
		b = append(b, kindFloats)
		b = appendFloatVec(b, v)
	case mpc.Int:
		b = append(b, kindInt)
		b = appendU64(b, uint64(int64(v)))
	case mpc.Float:
		b = append(b, kindFloat)
		b = appendU64(b, math.Float64bits(float64(v)))
	case mpc.KeyedFloats:
		b = append(b, kindKeyedFloats)
		b = appendIntVec(b, v.Keys)
		b = appendFloatVec(b, v.Vals)
	default:
		return nil, fmt.Errorf("transport: payload type %T is not in the wire vocabulary (internal/mpc/messages.go)", p)
	}
	return b, nil
}

// appendMessage encodes one queued message: source, destination, payload.
func appendMessage(b []byte, src, dst int, p mpc.Payload) ([]byte, error) {
	b = appendU32(b, uint32(src))
	b = appendU32(b, uint32(dst))
	return appendPayload(b, p)
}

// decoder consumes a byte buffer with bounds-checked reads. Every
// length field is validated against the bytes actually remaining before
// any allocation, so a hostile frame cannot request more memory than
// its own size.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("transport: "+format, args...)
	}
}

func (d *decoder) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 4 {
		d.fail("truncated u32 (%d bytes left)", len(d.b))
		return 0
	}
	v := binary.BigEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated u64 (%d bytes left)", len(d.b))
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) == 0 {
		d.fail("truncated byte")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// vecLen reads a u32 length and checks the remaining buffer can hold
// that many 8-byte elements.
func (d *decoder) vecLen() int {
	n := d.u32()
	if d.err == nil && uint64(n)*8 > uint64(len(d.b)) {
		d.fail("vector length %d exceeds remaining %d bytes", n, len(d.b))
		return 0
	}
	return int(n)
}

func (d *decoder) intVec() []int {
	n := d.vecLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(d.u64()))
	}
	return out
}

func (d *decoder) floatVec() []float64 {
	n := d.vecLen()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(d.u64())
	}
	return out
}

func (d *decoder) points() []metric.Point {
	n := d.u32()
	// Each point costs at least 4 bytes (its dim field).
	if d.err == nil && uint64(n)*4 > uint64(len(d.b)) {
		d.fail("point count %d exceeds remaining %d bytes", n, len(d.b))
	}
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]metric.Point, n)
	for i := range out {
		out[i] = metric.Point(d.floatVec())
	}
	return out
}

func (d *decoder) payload() mpc.Payload {
	kind := d.u8()
	if d.err != nil {
		return nil
	}
	switch kind {
	case kindPoints:
		return mpc.Points{Pts: d.points()}
	case kindTaggedPoints:
		return mpc.TaggedPoints{Tag: int(int64(d.u64())), Pts: d.points()}
	case kindIndexedPoints:
		return mpc.IndexedPoints{IDs: d.intVec(), Pts: d.points()}
	case kindWeightedPoints:
		return mpc.WeightedPoints{
			Tag: int(int64(d.u64())),
			IDs: d.intVec(),
			Pts: d.points(),
			Ws:  d.floatVec(),
		}
	case kindInts:
		return mpc.Ints(d.intVec())
	case kindFloats:
		return mpc.Floats(d.floatVec())
	case kindInt:
		return mpc.Int(int64(d.u64()))
	case kindFloat:
		return mpc.Float(math.Float64frombits(d.u64()))
	case kindKeyedFloats:
		return mpc.KeyedFloats{Keys: d.intVec(), Vals: d.floatVec()}
	default:
		d.fail("unknown payload kind %d", kind)
		return nil
	}
}

// message decodes one src/dst/payload triple, validating the ids
// against cluster size m (and, when lo < hi, the destination against
// the group range [lo, hi)).
func (d *decoder) message(m, lo, hi int) (src, dst int, p mpc.Payload) {
	src = int(d.u32())
	dst = int(d.u32())
	if d.err != nil {
		return 0, 0, nil
	}
	if src < 0 || src >= m {
		d.fail("message source %d out of cluster range [0,%d)", src, m)
		return 0, 0, nil
	}
	if dst < 0 || dst >= m {
		d.fail("message destination %d out of cluster range [0,%d)", dst, m)
		return 0, 0, nil
	}
	if lo < hi && (dst < lo || dst >= hi) {
		d.fail("message destination %d outside owned group [%d,%d)", dst, lo, hi)
		return 0, 0, nil
	}
	return src, dst, d.payload()
}
