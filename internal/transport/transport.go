// Package transport implements the TCP backend of the mpc.Transport
// interface: message delivery for a simulated MPC cluster whose
// machines' mailboxes are owned by kclusterd worker processes, so every
// metered word genuinely crosses a real wire.
//
// # Architecture
//
// The driver process runs the algorithm (superstep functions are Go
// closures and stay with the driver — see docs/TRANSPORT.md for the
// contract and its consequences); the m machines' message traffic is
// sharded over W workers, worker w owning the contiguous machine group
// Partition(m, W)[w]. At the end of every superstep the Client buckets
// the round's queued messages by owning worker, encodes each bucket
// with the canonical wire codec (codec.go), and performs one
// request/response frame exchange per worker: the worker decodes,
// validates and meters the shard — word metering on the wire, checked
// against the driver's own accounting — and returns it as the group's
// inbox for the next round. This is the external-shuffle-service shape
// of MapReduce/Spark, which is exactly the abstraction the MPC model
// charges for.
//
// Workers are stateless between rounds: all recoverable state stays in
// the driver, so the simulator's checkpoint/rollback fault recovery
// (mpc.Checkpoint/Restore) works unchanged over TCP, and a lost
// connection is recovered by redialing and resending the round — the
// real-world realization of the fault model's drop + retransmission
// (docs/MODEL.md).
//
// Determinism: the codec is canonical and value-preserving (float bits,
// message order, sender sort), so a run over this backend produces
// results, winning traces and budget reports identical to the
// in-process backend at the same seed. The transport-parity suite in
// internal/integration pins that contract; docs/TRANSPORT.md documents
// it.
package transport

// Group is a contiguous range of machine ids [Lo, Hi) owned by one
// worker process.
type Group struct {
	Lo, Hi int
}

// Contains reports whether machine id falls in the group.
func (g Group) Contains(id int) bool { return id >= g.Lo && id < g.Hi }

// Size returns the number of machines in the group.
func (g Group) Size() int { return g.Hi - g.Lo }

// Partition splits m machines into workers contiguous groups of
// near-equal size (group sizes differ by at most one; trailing groups
// may be empty when workers > m). It panics if m < 1 or workers < 1.
func Partition(m, workers int) []Group {
	if m < 1 || workers < 1 {
		panic("transport: Partition needs m >= 1 and workers >= 1")
	}
	groups := make([]Group, workers)
	for w := range groups {
		groups[w] = Group{Lo: w * m / workers, Hi: (w + 1) * m / workers}
	}
	return groups
}
