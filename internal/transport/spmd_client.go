package transport

// Coordinator-side SPMD sessions: Client implements mpc.SPMDTransport,
// so a cluster built WithSPMD over this backend executes registered
// supersteps inside the kclusterd workers that hold the machine
// partitions. Per round the coordinator link carries one small control
// frame per worker (superstep name, round tag, per-round scalars) and
// the workers' accounting replies; the round's payload traffic moves
// worker-to-worker over the peer mesh. Unlike Exchange, session calls do
// not redial: worker-held state dies with its connection, so a lost
// connection mid-session is a hard mpc.ErrTransport, not a retry
// (docs/TRANSPORT.md, "Failure handling").

import (
	"crypto/rand"
	"fmt"

	"parclust/internal/mpc"
	"parclust/internal/rng"
)

// spmdClientSession is a live SPMD session from the coordinator's side.
type spmdClientSession struct {
	c     *Client
	id    string
	round uint32
	// pendingCtrl accrues the control-plane words of setup/push/sync
	// calls between rounds; the next Run folds them into its reply so no
	// coordinator-link traffic escapes the per-round split.
	pendingCtrl int64
	closed      bool
}

// ctrlWords converts coordinator-link frame bytes to whole words.
func ctrlWords(bytes int64) int64 { return (bytes + 7) / 8 }

// SPMDSetup creates a worker-side session for the cluster described by
// setup and returns it. The setup phase ships each worker the session
// geometry and the replicated read-only env once; a second connect pass
// (sent only after every worker acknowledged the session) has the
// workers dial their peer mesh.
func (c *Client) SPMDSetup(setup *mpc.SPMDSetup) (mpc.SPMDSession, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if setup.M != c.m {
		return nil, fmt.Errorf("spmd setup for %d machines on a %d-machine transport", setup.M, c.m)
	}
	idBytes := make([]byte, spmdIDLen)
	if _, err := rand.Read(idBytes); err != nil {
		return nil, fmt.Errorf("spmd session id: %w", err)
	}
	id := string(idBytes)

	groups := make([]Group, len(c.workers))
	for w, wc := range c.workers {
		groups[w] = wc.group
	}
	bodies := make([][]byte, len(c.workers))
	for w := range c.workers {
		bodies[w] = appendSPMDSetup(nil, &spmdSetupMsg{
			ID:         id,
			M:          setup.M,
			Self:       w,
			Groups:     groups,
			Addrs:      c.cfg.Workers,
			SpaceName:  setup.SpaceName,
			Thresholds: setup.Thresholds,
			Parts:      setup.Parts,
			IDs:        setup.IDs,
		})
	}
	sess := &spmdClientSession{c: c, id: id}
	_, setupBytes, err := c.spmdCall(frameSPMDSetup, frameSPMDSetupOK, bodies)
	if err != nil {
		return nil, err
	}
	connectBody := []byte(id)
	_, connectBytes, err := c.spmdCall(frameSPMDConnect, frameSPMDConnectOK, c.sameBody(connectBody))
	if err != nil {
		return nil, err
	}
	sess.pendingCtrl = ctrlWords(setupBytes) + ctrlWords(connectBytes)
	return sess, nil
}

// sameBody builds a per-worker body vector whose entries all alias body.
func (c *Client) sameBody(body []byte) [][]byte {
	bodies := make([][]byte, len(c.workers))
	for w := range bodies {
		bodies[w] = body
	}
	return bodies
}

// spmdCall performs one request/response pair with every worker
// concurrently, with no retry: a failed worker call closes that
// connection (abandoning the worker's session state) and fails the
// call. It returns the reply bodies and the total coordinator-link
// bytes (headers included, both directions). Callers hold c.mu.
func (c *Client) spmdCall(reqType, wantType byte, bodies [][]byte) ([][]byte, int64, error) {
	type result struct {
		body  []byte
		bytes int64
		err   error
	}
	results := make([]result, len(c.workers))
	done := make(chan int, len(c.workers))
	for w := range c.workers {
		go func(w int, wc *workerConn) {
			defer func() { done <- w }()
			res := &results[w]
			if wc.conn == nil {
				res.err = fmt.Errorf("worker %s: connection lost (SPMD sessions do not redial)", wc.addr)
				return
			}
			res.bytes = int64(headerLen + len(bodies[w]))
			if err := writeFrame(wc.conn, reqType, bodies[w]); err != nil {
				res.err = fmt.Errorf("worker %s: %w", wc.addr, err)
				return
			}
			typ, body, err := readFrame(wc.conn, wc.maxFrame)
			if err != nil {
				res.err = fmt.Errorf("worker %s: %w", wc.addr, err)
				return
			}
			res.bytes += int64(headerLen + len(body))
			switch {
			case typ == frameError:
				res.err = fmt.Errorf("worker %s: %s", wc.addr, body)
			case typ != wantType:
				res.err = fmt.Errorf("worker %s: frame type %d, want %d", wc.addr, typ, wantType)
			default:
				res.body = body
			}
		}(w, c.workers[w])
	}
	for range c.workers {
		<-done
	}
	var firstErr error
	var totalBytes int64
	out := make([][]byte, len(c.workers))
	for w := range results {
		res := &results[w]
		c.stats.FramesSent++
		c.stats.BytesSent += int64(len(bodies[w]))
		c.stats.BytesRecv += int64(len(res.body))
		totalBytes += res.bytes
		out[w] = res.body
		if res.err != nil {
			// The worker's session state is unrecoverable: kill the
			// connection so a later coordinator-compute Exchange starts
			// from a clean redial.
			if wc := c.workers[w]; wc.conn != nil {
				wc.conn.Close()
				wc.conn = nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
		}
	}
	if firstErr != nil {
		return nil, totalBytes, firstErr
	}
	return out, totalBytes, nil
}

// Run executes one registered superstep worker-side and merges the
// workers' accounting into the coordinator's reply.
func (s *spmdClientSession) Run(req *mpc.SPMDRun) (*mpc.SPMDReply, error) {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("spmd session is closed")
	}
	round := s.round
	s.round++
	body := appendSPMDRun(nil, s.id, round, req)
	replies, bytes, err := c.spmdCall(frameSPMDRun, frameSPMDRunOK, c.sameBody(body))
	if err != nil {
		return nil, err
	}
	out := &mpc.SPMDReply{
		Machines:      make([]mpc.SPMDMachineReport, c.m),
		Recv:          make([]int64, c.m),
		WireCtrlWords: ctrlWords(bytes) + s.pendingCtrl,
	}
	s.pendingCtrl = 0
	for w, wc := range c.workers {
		msg, err := decodeSPMDRunReply(replies[w], c.m)
		if err != nil {
			return nil, fmt.Errorf("worker %s: %w", wc.addr, err)
		}
		g := wc.group
		if len(msg.Reports) != g.Size() {
			return nil, fmt.Errorf("worker %s: %d reports for group [%d,%d)", wc.addr, len(msg.Reports), g.Lo, g.Hi)
		}
		if len(msg.Recv) != 0 && len(msg.Recv) != c.m {
			return nil, fmt.Errorf("worker %s: recv vector of %d entries, want %d", wc.addr, len(msg.Recv), c.m)
		}
		copy(out.Machines[g.Lo:g.Hi], msg.Reports)
		for i, v := range msg.Recv {
			out.Recv[i] += v
		}
		if msg.MemoryWords > out.MemoryWords {
			out.MemoryWords = msg.MemoryWords
		}
		// Workers are visited in ascending group order and yields are
		// ascending within a group, so appending keeps the cluster-wide
		// ascending order RunStep promises.
		out.Yields = append(out.Yields, msg.Yields...)
		out.WireDataWords += msg.ShardWords
	}
	return out, nil
}

// Push ships machine state to the workers, each receiving its group's
// slice.
func (s *spmdClientSession) Push(st *mpc.SPMDState) error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.closed {
		return fmt.Errorf("spmd session is closed")
	}
	if len(st.RNG) != c.m || len(st.Pending) != c.m {
		return fmt.Errorf("spmd push covers %d/%d machines, want %d", len(st.RNG), len(st.Pending), c.m)
	}
	bodies := make([][]byte, len(c.workers))
	for w, wc := range c.workers {
		g := wc.group
		b, err := appendSPMDStates([]byte(s.id), g.Lo, st.RNG[g.Lo:g.Hi], st.Pending[g.Lo:g.Hi])
		if err != nil {
			return err
		}
		bodies[w] = b
	}
	_, bytes, err := c.spmdCall(frameSPMDPush, frameSPMDPushOK, bodies)
	s.pendingCtrl += ctrlWords(bytes)
	return err
}

// Sync resolves the staged messages and pulls the full machine state
// back from the workers.
func (s *spmdClientSession) Sync(prev byte) (*mpc.SPMDState, error) {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("spmd session is closed")
	}
	body := append([]byte(s.id), prev)
	replies, bytes, err := c.spmdCall(frameSPMDSync, frameSPMDSyncOK, c.sameBody(body))
	s.pendingCtrl += ctrlWords(bytes)
	if err != nil {
		return nil, err
	}
	st := &mpc.SPMDState{
		RNG:     make([]rng.State, c.m),
		Pending: make([][]mpc.Message, c.m),
	}
	for w, wc := range c.workers {
		g := wc.group
		d := &decoder{b: replies[w]}
		sts, pending := d.spmdStates(c.m, g.Lo, g.Hi)
		d.trailing("spmd syncOK")
		if d.err != nil {
			return nil, fmt.Errorf("worker %s: %w", wc.addr, d.err)
		}
		copy(st.RNG[g.Lo:g.Hi], sts)
		copy(st.Pending[g.Lo:g.Hi], pending)
	}
	return st, nil
}

// Close tears the worker-side sessions down. Best-effort: a worker that
// is already unreachable has no session state left to free, so its
// failure only kills the connection (forcing a clean redial later) and
// is not reported.
func (s *spmdClientSession) Close() error {
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	_, _, _ = c.spmdCall(frameSPMDEnd, frameSPMDEndOK, c.sameBody([]byte(s.id)))
	return nil
}
