package transport

// Property tests for the SPMD control-plane codec (control.go). The
// contract mirrors codec_test.go's for payloads: round-trips are exact,
// encodings are canonical (the same value always produces the same
// bytes, so re-encoding a decode reproduces the input), every length
// field is bounds-checked against the remaining buffer before any
// allocation, and malformed bodies produce errors instead of garbage.

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
)

// sampleSetup builds a representative 2-worker, 4-machine setup body
// with asymmetric groups, replicated thresholds and per-machine parts.
func sampleSetup() *spmdSetupMsg {
	return &spmdSetupMsg{
		ID:     "0123456789abcdef",
		M:      4,
		Self:   1,
		Groups: []Group{{Lo: 0, Hi: 1}, {Lo: 1, Hi: 4}},
		Addrs:  []string{"127.0.0.1:9001", "127.0.0.1:9002"},

		SpaceName:  "l2",
		Thresholds: []float64{0.5, 1, 2, 4.25},
		Parts: [][]metric.Point{
			{{1, 2}, {3, 4}},
			{{5, 6}},
			nil,
			{{-7.5, 8}, {9, math.Inf(1)}},
		},
		IDs: [][]int{{10, 11}, {12}, nil, {13, 14}},
	}
}

func TestSPMDSetupRoundTrip(t *testing.T) {
	msg := sampleSetup()
	b := appendSPMDSetup(nil, msg)
	got, err := decodeSPMDSetup(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, msg)
	}
	// Canonical: re-encoding the decode reproduces the bytes.
	if re := appendSPMDSetup(nil, got); !bytes.Equal(re, b) {
		t.Fatalf("setup encoding not canonical:\n in  %x\n out %x", b, re)
	}
}

func TestSPMDSetupRejectsBadGeometry(t *testing.T) {
	corrupt := func(name string, f func(*spmdSetupMsg)) {
		msg := sampleSetup()
		f(msg)
		if _, err := decodeSPMDSetup(appendSPMDSetup(nil, msg)); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	corrupt("zero machines", func(m *spmdSetupMsg) { m.M = 0 })
	corrupt("self out of range", func(m *spmdSetupMsg) { m.Self = 2 })
	corrupt("negative self", func(m *spmdSetupMsg) { m.Self = -1 })
	corrupt("gap in partition", func(m *spmdSetupMsg) { m.Groups[1].Lo = 2 })
	corrupt("overlapping groups", func(m *spmdSetupMsg) { m.Groups[0].Hi = 2 })
	corrupt("inverted group", func(m *spmdSetupMsg) { m.Groups[1] = Group{Lo: 1, Hi: 0} })
	corrupt("groups exceed m", func(m *spmdSetupMsg) { m.Groups[1].Hi = 5 })
	corrupt("groups undershoot m", func(m *spmdSetupMsg) { m.Groups[1].Hi = 3 })
	corrupt("part count below m", func(m *spmdSetupMsg) {
		m.Parts = m.Parts[:3]
		m.IDs = m.IDs[:3]
	})
	corrupt("ids/points length mismatch", func(m *spmdSetupMsg) { m.IDs[0] = []int{10} })

	// Truncations at every prefix must error, never panic.
	full := appendSPMDSetup(nil, sampleSetup())
	for i := 0; i < len(full); i++ {
		if _, err := decodeSPMDSetup(full[:i]); err == nil {
			t.Fatalf("truncated setup body (%d of %d bytes) decoded without error", i, len(full))
		}
	}
	if _, err := decodeSPMDSetup(append(append([]byte{}, full...), 0)); err == nil {
		t.Fatal("setup body with a trailing byte decoded without error")
	}
}

// TestSPMDSetupRejectsOversizedCounts feeds hand-built bodies whose
// count fields claim more elements than the buffer can hold; the
// decoder must reject them before allocating.
func TestSPMDSetupRejectsOversizedCounts(t *testing.T) {
	id := []byte("0123456789abcdef")
	huge := func(workers uint32) []byte {
		b := append([]byte{}, id...)
		b = appendU32(b, 4)       // m
		b = appendU32(b, workers) // claimed worker count
		b = appendU32(b, 0)       // self
		return b
	}
	cases := map[string][]byte{
		"worker count exceeds buffer": huge(1 << 30),
		"string length exceeds buffer": func() []byte {
			b := huge(1)
			b = appendU32(b, 0) // lo
			b = appendU32(b, 4) // hi
			b = appendU32(b, 1<<31)
			return b
		}(),
	}
	for name, body := range cases {
		if _, err := decodeSPMDSetup(body); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestSPMDRunRoundTrip(t *testing.T) {
	for _, req := range []*mpc.SPMDRun{
		{Name: "degree/count", Prev: mpc.SPMDPrevNone, I: []int{3, -1}, F: []float64{0.25}},
		{Name: "kbmis/luby", Prev: mpc.SPMDPrevCommit, Local: true},
		{Name: "", Prev: mpc.SPMDPrevAbort, I: nil, F: nil},
	} {
		b := appendSPMDRun(nil, "0123456789abcdef", 42, req)
		id, round, got, err := decodeSPMDRun(b)
		if err != nil {
			t.Fatalf("%q: decode: %v", req.Name, err)
		}
		if id != "0123456789abcdef" || round != 42 {
			t.Fatalf("%q: id/round = %q/%d", req.Name, id, round)
		}
		if got.Name != req.Name || got.Prev != req.Prev || got.Local != req.Local ||
			!reflect.DeepEqual(normInts(got.I), normInts(req.I)) ||
			!reflect.DeepEqual(normFloats(got.F), normFloats(req.F)) {
			t.Fatalf("%q: round trip mismatch: %+v vs %+v", req.Name, got, req)
		}
		if re := appendSPMDRun(nil, id, round, got); !bytes.Equal(re, b) {
			t.Fatalf("%q: run encoding not canonical:\n in  %x\n out %x", req.Name, b, re)
		}
	}
}

func TestSPMDRunRejectsBadFlags(t *testing.T) {
	good := appendSPMDRun(nil, "0123456789abcdef", 7, &mpc.SPMDRun{Name: "x"})
	// Byte 16 is prev, byte 17 the local flag.
	for _, tc := range []struct {
		name string
		at   int
		v    byte
	}{
		{"staged outcome beyond abort", spmdIDLen, mpc.SPMDPrevAbort + 1},
		{"local flag beyond bool", spmdIDLen + 1, 2},
	} {
		bad := append([]byte{}, good...)
		bad[tc.at] = tc.v
		if _, _, _, err := decodeSPMDRun(bad); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
	for i := 0; i < len(good); i++ {
		if _, _, _, err := decodeSPMDRun(good[:i]); err == nil {
			t.Fatalf("truncated run body (%d bytes) decoded without error", i)
		}
	}
	if _, _, _, err := decodeSPMDRun(append(append([]byte{}, good...), 0)); err == nil {
		t.Fatal("run body with a trailing byte decoded without error")
	}
}

func sampleRunReply() *spmdRunReplyMsg {
	return &spmdRunReplyMsg{
		ShardWords:  17,
		MemoryWords: 4096,
		Recv:        []int64{1, 0, 5, 2},
		Reports: []mpc.SPMDMachineReport{
			{SentWords: 12, SentAny: true, DistinctDsts: 3},
			{SentWords: 0, AllCentral: true, Err: "machine 2: bag overflow"},
		},
		Yields: []mpc.Yield{
			{Machine: 1, Payload: mpc.Ints{9, -9}},
			{Machine: 3, Payload: mpc.Float(2.5)},
		},
	}
}

func TestSPMDRunReplyRoundTrip(t *testing.T) {
	msg := sampleRunReply()
	b, err := appendSPMDRunReply(nil, msg)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := decodeSPMDRunReply(b, 4)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, msg)
	}
	re, err := appendSPMDRunReply(nil, got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, b) {
		t.Fatalf("runOK encoding not canonical:\n in  %x\n out %x", b, re)
	}
}

func TestSPMDRunReplyRejectsMalformed(t *testing.T) {
	encode := func(msg *spmdRunReplyMsg) []byte {
		t.Helper()
		b, err := appendSPMDRunReply(nil, msg)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	reject := func(name string, body []byte) {
		t.Helper()
		if _, err := decodeSPMDRunReply(body, 4); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}

	// Yield machine out of the cluster range.
	bad := sampleRunReply()
	bad.Yields[1].Machine = 4
	reject("yield machine beyond m", encode(bad))

	// Yields out of ascending order (and duplicates, the degenerate case).
	bad = sampleRunReply()
	bad.Yields[0], bad.Yields[1] = bad.Yields[1], bad.Yields[0]
	reject("yields out of order", encode(bad))
	bad = sampleRunReply()
	bad.Yields[1].Machine = 1
	reject("duplicate yield machine", encode(bad))

	// Report flags byte with bits beyond sentAny|allCentral set.
	good := encode(sampleRunReply())
	flagAt := 8 + 8 + 4 + 4*8 + 4 + 8 // shard, mem, recv len, recv, nReports, sentWords
	withFlag := append([]byte{}, good...)
	withFlag[flagAt] = 4
	reject("report flags beyond bit 1", withFlag)

	// Oversized counts must fail the pre-check before allocation.
	header := appendU64(appendU64(nil, 1), 1)
	header = appendU32(header, 0) // empty recv
	reject("report count exceeds buffer", appendU32(append([]byte{}, header...), 1<<30))
	withReports := appendU32(append([]byte{}, header...), 0)
	reject("yield count exceeds buffer", appendU32(withReports, 1<<30))

	for i := 0; i < len(good); i++ {
		if _, err := decodeSPMDRunReply(good[:i], 4); err == nil {
			t.Fatalf("truncated runOK body (%d of %d bytes) decoded without error", i, len(good))
		}
	}
	reject("trailing byte", append(append([]byte{}, good...), 0))
}

func TestSPMDStatesRoundTrip(t *testing.T) {
	const m, lo = 4, 1
	sts := []rng.State{
		{S: 1, Gamma: 3},
		{S: 1 << 60, Gamma: 5, HaveGauss: true, Gauss: -1.75},
		{S: 9, Gamma: 7, Gauss: math.Copysign(0, -1)},
	}
	pending := [][]mpc.Message{
		{{From: 0, Payload: mpc.Ints{1, 2}}, {From: 3, Payload: mpc.Float(0.5)}},
		nil,
		{{From: 3, Payload: mpc.Floats{1, 2, 3}}},
	}
	b, err := appendSPMDStates(nil, lo, sts, pending)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	d := &decoder{b: b}
	gotSts, gotPending := d.spmdStates(m, lo, lo+len(sts))
	if d.err != nil {
		t.Fatalf("decode: %v", d.err)
	}
	if len(d.b) != 0 {
		t.Fatalf("decode left %d trailing bytes", len(d.b))
	}
	if !reflect.DeepEqual(gotSts, sts) {
		t.Fatalf("states mismatch: %+v vs %+v", gotSts, sts)
	}
	for i := range pending {
		if len(gotPending[i]) != len(pending[i]) {
			t.Fatalf("machine %d: %d pending messages, want %d", lo+i, len(gotPending[i]), len(pending[i]))
		}
		for j, msg := range pending[i] {
			if gotPending[i][j].From != msg.From || !payloadsEqual(gotPending[i][j].Payload, msg.Payload) {
				t.Fatalf("machine %d message %d mismatch", lo+i, j)
			}
		}
	}
	re, err := appendSPMDStates(nil, lo, gotSts, gotPending)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(re, b) {
		t.Fatalf("states encoding not canonical:\n in  %x\n out %x", b, re)
	}
}

func TestSPMDStatesRejectsMalformed(t *testing.T) {
	const m, lo, hi = 4, 1, 3
	sts := []rng.State{{S: 1, Gamma: 3}, {S: 2, Gamma: 5}}
	pending := [][]mpc.Message{nil, {{From: 0, Payload: mpc.Ints{7}}}}
	good, err := appendSPMDStates(nil, lo, sts, pending)
	if err != nil {
		t.Fatal(err)
	}

	decode := func(body []byte) error {
		d := &decoder{b: body}
		d.spmdStates(m, lo, hi)
		if d.err == nil && len(d.b) != 0 {
			d.fail("%d trailing bytes", len(d.b))
		}
		return d.err
	}
	if err := decode(good); err != nil {
		t.Fatalf("well-formed states rejected: %v", err)
	}

	// Count must equal the group width exactly.
	short := appendU32(nil, uint32(hi-lo-1))
	if err := decode(short); err == nil {
		t.Error("state count below group width decoded without error")
	}
	long := appendU32(nil, uint32(hi-lo+1))
	if err := decode(long); err == nil {
		t.Error("state count above group width decoded without error")
	}

	// The haveGauss byte is a strict bool.
	bad := append([]byte{}, good...)
	bad[4+8+8] = 2 // count(4) + S(8) + Gamma(8) → first haveGauss flag
	if err := decode(bad); err == nil {
		t.Error("haveGauss flag 2 decoded without error")
	}

	// A pending message claiming a huge count must fail the pre-check.
	huge := appendU32(nil, uint32(hi-lo))
	huge = appendU64(huge, 1)
	huge = appendU64(huge, 3)
	huge = append(huge, 0)
	huge = appendU64(huge, 0)
	huge = appendU32(huge, 1<<30) // msgCount far beyond the buffer
	if err := decode(huge); err == nil {
		t.Error("message count exceeding buffer decoded without error")
	}

	for i := 0; i < len(good); i++ {
		if err := decode(good[:i]); err == nil {
			t.Fatalf("truncated states body (%d of %d bytes) decoded without error", i, len(good))
		}
	}
}

// TestSessionIDAndStrHelpers pins the low-level readers the session
// frames share: fixed-width ids and bounds-checked strings.
func TestSessionIDAndStrHelpers(t *testing.T) {
	d := &decoder{b: []byte("0123456789abcdefrest")}
	if id := d.sessionID(); id != "0123456789abcdef" || d.err != nil {
		t.Fatalf("sessionID = %q, err %v", id, d.err)
	}
	if string(d.b) != "rest" {
		t.Fatalf("sessionID consumed wrong bytes, %q left", d.b)
	}
	d = &decoder{b: []byte("too short")}
	if d.sessionID(); d.err == nil {
		t.Fatal("short session id decoded without error")
	}

	b := appendStr(nil, "hello")
	d = &decoder{b: b}
	if s := d.str(); s != "hello" || d.err != nil || len(d.b) != 0 {
		t.Fatalf("str round trip: %q err %v rest %d", s, d.err, len(d.b))
	}
	d = &decoder{b: appendU32(nil, 1<<30)}
	if d.str(); d.err == nil {
		t.Fatal("oversized string length decoded without error")
	}

	vec := appendInt64Vec(nil, []int64{-1, 0, math.MaxInt64})
	d = &decoder{b: vec}
	if got := d.int64Vec(); d.err != nil || !reflect.DeepEqual(got, []int64{-1, 0, math.MaxInt64}) {
		t.Fatalf("int64Vec round trip: %v err %v", got, d.err)
	}
	if re := appendInt64Vec(nil, []int64{-1, 0, math.MaxInt64}); !bytes.Equal(re, vec) {
		t.Fatal("int64Vec encoding not canonical")
	}
}
