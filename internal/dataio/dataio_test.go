package dataio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"parclust/internal/metric"
	"parclust/internal/rng"
)

func TestReadCSVBasic(t *testing.T) {
	in := "1,2,3\n# comment\n\n4,5,6\n"
	pts, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || !pts[0].Equal(metric.Point{1, 2, 3}) || !pts[1].Equal(metric.Point{4, 5, 6}) {
		t.Fatalf("pts = %v", pts)
	}
}

func TestReadCSVWhitespace(t *testing.T) {
	pts, err := ReadCSV(strings.NewReader("  1 , 2 \n"))
	if err != nil {
		t.Fatal(err)
	}
	if !pts[0].Equal(metric.Point{1, 2}) {
		t.Fatalf("pts = %v", pts)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,x\n")); err == nil {
		t.Fatal("bad float accepted")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Fatal("ragged dimensions accepted")
	}
}

func TestReadJSONBasic(t *testing.T) {
	pts, err := ReadJSON(strings.NewReader(`[[1,2],[3,4]]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || !pts[1].Equal(metric.Point{3, 4}) {
		t.Fatalf("pts = %v", pts)
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`[]`)); err == nil {
		t.Fatal("empty array accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`{`)); err == nil {
		t.Fatal("malformed json accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`[[1,2],[3]]`)); err == nil {
		t.Fatal("ragged dimensions accepted")
	}
}

// Round-trip property for both formats.
func TestRoundTrip(t *testing.T) {
	r := rng.New(1)
	f := func(nRaw, dimRaw uint8) bool {
		n := int(nRaw%20) + 1
		dim := int(dimRaw%5) + 1
		pts := make([]metric.Point, n)
		for i := range pts {
			p := make(metric.Point, dim)
			for j := range p {
				p[j] = r.NormFloat64() * 1e3
			}
			pts[i] = p
		}
		var csvBuf bytes.Buffer
		if err := WriteCSV(&csvBuf, pts); err != nil {
			return false
		}
		back, err := ReadCSV(&csvBuf)
		if err != nil || !equalPts(back, pts) {
			return false
		}
		var jsonBuf bytes.Buffer
		if err := WriteJSON(&jsonBuf, pts); err != nil {
			return false
		}
		back, err = ReadJSON(&jsonBuf)
		return err == nil && equalPts(back, pts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func equalPts(a, b []metric.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func TestReadWriteFile(t *testing.T) {
	dir := t.TempDir()
	pts := []metric.Point{{1, 2}, {3, 4}}

	csvPath := filepath.Join(dir, "pts.csv")
	if err := WriteFile(csvPath, pts); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(csvPath)
	if err != nil || !equalPts(back, pts) {
		t.Fatalf("csv roundtrip: %v %v", back, err)
	}

	jsonPath := filepath.Join(dir, "pts.json")
	if err := WriteFile(jsonPath, pts); err != nil {
		t.Fatal(err)
	}
	back, err = ReadFile(jsonPath)
	if err != nil || !equalPts(back, pts) {
		t.Fatalf("json roundtrip: %v %v", back, err)
	}
	// Verify the JSON file actually contains JSON.
	raw, _ := os.ReadFile(jsonPath)
	if !strings.HasPrefix(strings.TrimSpace(string(raw)), "[[") {
		t.Fatalf("json file content: %s", raw)
	}

	if _, err := ReadFile(""); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.csv")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// Robustness: arbitrary byte soup must never panic — only parse or error.
func TestReadCSVNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("ReadCSV panicked")
			}
		}()
		_, _ = ReadCSV(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if recover() != nil {
				t.Fatal("ReadJSON panicked")
			}
		}()
		_, _ = ReadJSON(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
