// Package dataio reads and writes point sets in the two interchange
// formats the CLIs speak: CSV (one comma-separated point per line; blank
// lines and '#' comments skipped) and JSON (an array of coordinate
// arrays). All points in a file must share one dimensionality.
package dataio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"parclust/internal/metric"
)

// ReadCSV parses points from r. The returned points are views into one
// contiguous buffer (ReadCSVSet), so downstream metric.FromPoints calls
// stay cache-friendly.
func ReadCSV(r io.Reader) ([]metric.Point, error) {
	set, err := ReadCSVSet(r)
	if err != nil {
		return nil, err
	}
	return set.Points(), nil
}

// ReadCSVSet parses points from r directly into a contiguous row-major
// buffer and wraps it as a PointSet via metric.FromFlat — no per-point
// allocations and no copy, and the f32 kernel lane is selected
// automatically when the file's values are float32-exact (as exported
// embedding tables are).
func ReadCSVSet(r io.Reader) (*metric.PointSet, error) {
	var flat []float64
	dim := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if dim == 0 {
			dim = len(fields)
		} else if len(fields) != dim {
			return nil, fmt.Errorf("dataio: line %d: dimension %d, expected %d",
				lineNo, len(fields), dim)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("dataio: line %d: %w", lineNo, err)
			}
			flat = append(flat, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(flat) == 0 || dim == 0 {
		return nil, fmt.Errorf("dataio: no points")
	}
	return metric.FromFlat(flat, dim), nil
}

// WriteCSV writes points to w, one line per point, full float precision.
func WriteCSV(w io.Writer, pts []metric.Point) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		for i, v := range p {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON parses a JSON array of coordinate arrays.
func ReadJSON(r io.Reader) ([]metric.Point, error) {
	var raw [][]float64
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("dataio: %w", err)
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("dataio: no points")
	}
	pts := make([]metric.Point, len(raw))
	for i, c := range raw {
		if len(c) != len(raw[0]) {
			return nil, fmt.Errorf("dataio: point %d has dimension %d, expected %d",
				i, len(c), len(raw[0]))
		}
		pts[i] = metric.Point(c)
	}
	return pts, nil
}

// WriteJSON writes points as a JSON array of coordinate arrays.
func WriteJSON(w io.Writer, pts []metric.Point) error {
	raw := make([][]float64, len(pts))
	for i, p := range pts {
		raw[i] = p
	}
	enc := json.NewEncoder(w)
	return enc.Encode(raw)
}

// ReadFileSet loads points from path as a contiguous PointSet,
// dispatching on the extension like ReadFile. CSV files stream straight
// into the flat buffer; JSON files decode and then pack once.
func ReadFileSet(path string) (*metric.PointSet, error) {
	if path == "" {
		return nil, fmt.Errorf("dataio: no file given")
	}
	if path == "-" {
		return ReadCSVSet(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".json") {
		pts, err := ReadJSON(f)
		if err != nil {
			return nil, err
		}
		return metric.FromPoints(pts), nil
	}
	return ReadCSVSet(f)
}

// ReadFile loads points from path, dispatching on the extension (.json →
// JSON, anything else → CSV). "-" reads CSV from stdin.
func ReadFile(path string) ([]metric.Point, error) {
	if path == "" {
		return nil, fmt.Errorf("dataio: no file given")
	}
	if path == "-" {
		return ReadCSV(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".json") {
		return ReadJSON(f)
	}
	return ReadCSV(f)
}

// WriteFile writes points to path, dispatching on the extension like
// ReadFile. "-" writes CSV to stdout.
func WriteFile(path string, pts []metric.Point) error {
	if path == "-" {
		return WriteCSV(os.Stdout, pts)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(strings.ToLower(path), ".json") {
		return WriteJSON(f, pts)
	}
	return WriteCSV(f, pts)
}
