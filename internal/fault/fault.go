// Package fault provides deterministic fault schedules for the MPC
// simulator (internal/mpc): machine crashes mid-superstep, message drops
// and duplication in transit, straggler delays, and persistent probe
// aborts. A Schedule implements mpc.FaultPolicy and is a pure function
// of its configuration — explicit events, or per-kind rates expanded
// from a seed via rng.Derive — so a faulted run is exactly reproducible
// from the schedule alone, and replayable from its NDJSON serialization
// (ndjson.go).
//
// Determinism is load-bearing: the fault-parity suite
// (internal/integration) asserts that any schedule with retries enabled
// yields byte-identical results, winning traces and winning budget
// reports to the fault-free run, which requires the same faults to
// strike the same (round, machine) coordinates on every execution —
// including concurrently forked probe clusters, which consult the
// policy from multiple goroutines at once.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"parclust/internal/mpc"
	"parclust/internal/rng"
)

// Kind names an injected fault. The first four map one-to-one onto the
// mpc recovery semantics (see internal/mpc/fault.go); Abort is a
// schedule-level construct: a crash that refires on every in-place retry
// of probe incarnation 0, so only a probe-level retry (fresh fork or
// checkpoint rollback, at FaultScope.Epoch >= 1) gets past it.
type Kind string

const (
	Crash     Kind = "crash"
	Drop      Kind = "drop"
	Duplicate Kind = "duplicate"
	Straggler Kind = "straggler"
	Abort     Kind = "abort"
)

// knownKind reports whether k is one of the defined fault kinds.
func knownKind(k Kind) bool {
	switch k {
	case Crash, Drop, Duplicate, Straggler, Abort:
		return true
	}
	return false
}

// Event is one explicitly scheduled fault. The zero values of the
// optional fields mean "first attempt, first incarnation, root cluster,
// any name".
type Event struct {
	// Round is the cluster-local round index the fault strikes
	// (fork-local for fork-scoped events); -1 matches every round.
	Round int `json:"round"`
	// Machine is the machine the fault strikes (the sender, for transit
	// faults). Out-of-range indices are ignored by the simulator.
	Machine int `json:"machine"`
	// Kind is the fault kind.
	Kind Kind `json:"kind"`
	// Attempt is the in-place superstep retry attempt the fault strikes
	// (crash/straggler; transit faults fire on the attempt that
	// completes the round). Ignored by Abort, which strikes every
	// attempt.
	Attempt int `json:"attempt,omitempty"`
	// Epoch is the probe incarnation the fault strikes: 0 is the first
	// execution, n >= 1 the n-th probe-level retry. Faults pinned to
	// epoch 0 vanish on retry — that is what makes them recoverable.
	Epoch int `json:"epoch,omitempty"`
	// Rung, when non-nil, restricts the fault to the forked probe
	// cluster of that ladder rung; nil matches the root cluster and
	// forks alike.
	Rung *int `json:"rung,omitempty"`
	// Name, when non-empty, restricts the fault to supersteps whose
	// label has this prefix (e.g. "kbmis/").
	Name string `json:"name,omitempty"`
	// DelayNanos is the straggler delay; ignored by other kinds.
	DelayNanos int64 `json:"delay_ns,omitempty"`
}

// matches reports whether the event strikes the given coordinates.
func (e Event) matches(scope mpc.FaultScope, round, attempt int, name string) bool {
	if e.Round != -1 && e.Round != round {
		return false
	}
	if e.Kind != Abort && e.Attempt != attempt {
		return false
	}
	if e.Epoch != scope.Epoch {
		return false
	}
	if e.Rung != nil && (!scope.Fork || *e.Rung != scope.Rung) {
		return false
	}
	if e.Name != "" && !strings.HasPrefix(name, e.Name) {
		return false
	}
	return true
}

// Rates configures the random mode: each is the per-(round, machine)
// probability of the corresponding fault kind, decided independently
// and deterministically from the schedule seed. StragglerDelay is the
// delay injected by straggler faults.
type Rates struct {
	Crash          float64       `json:"crash,omitempty"`
	Drop           float64       `json:"drop,omitempty"`
	Duplicate      float64       `json:"duplicate,omitempty"`
	Straggler      float64       `json:"straggler,omitempty"`
	Abort          float64       `json:"abort,omitempty"`
	StragglerDelay time.Duration `json:"straggler_delay_ns,omitempty"`
}

func (r Rates) zero() bool {
	return r.Crash == 0 && r.Drop == 0 && r.Duplicate == 0 && r.Straggler == 0 && r.Abort == 0
}

// Schedule is a deterministic fault plan implementing mpc.FaultPolicy.
// It combines an explicit event list with a rate-driven random mode
// (both may be active); the random decisions are pure functions of
// (Seed, scope, round, machine, kind), so concurrent forks and repeated
// runs see identical faults. The zero value injects nothing and allows
// no retries.
type Schedule struct {
	// Events are explicitly scheduled faults.
	Events []Event
	// Seed drives the random mode via rng.Derive.
	Seed uint64
	// Rates are the random-mode fault probabilities.
	Rates Rates
	// MaxRoundRetries is the in-place superstep retry allowance
	// (mpc.FaultPolicy.RoundRetries): how many failed attempts a round
	// may absorb before the superstep fails with mpc.ErrFault.
	MaxRoundRetries int
	// MaxProbeRetries is the probe-level retry allowance
	// (mpc.FaultPolicy.ProbeRetries) consumed by the ladder drivers.
	MaxProbeRetries int
	// Backoff is the base probe-retry backoff: attempt n waits
	// (n+1)·Backoff. Keep it tiny in tests — it is wall-clock time.
	Backoff time.Duration

	// fired counts PlanRound calls that injected at least one fault —
	// observability for tests asserting a schedule actually struck.
	fired atomic.Int64
}

var _ mpc.FaultPolicy = (*Schedule)(nil)

// NewRandom returns a rate-driven schedule with the default recovery
// allowance (2 in-place round retries, 2 probe retries): every injected
// fault is recoverable unless the caller lowers the allowances.
func NewRandom(seed uint64, rates Rates) *Schedule {
	return &Schedule{Seed: seed, Rates: rates, MaxRoundRetries: 2, MaxProbeRetries: 2}
}

// FromEvents returns an event-driven schedule with the same default
// recovery allowance as NewRandom.
func FromEvents(events ...Event) *Schedule {
	return &Schedule{Events: events, MaxRoundRetries: 2, MaxProbeRetries: 2}
}

// RoundRetries implements mpc.FaultPolicy.
func (s *Schedule) RoundRetries() int { return s.MaxRoundRetries }

// ProbeRetries implements mpc.FaultPolicy.
func (s *Schedule) ProbeRetries() int { return s.MaxProbeRetries }

// ProbeBackoff implements mpc.FaultPolicy: linear backoff on the
// configured base.
func (s *Schedule) ProbeBackoff(attempt int) time.Duration {
	return time.Duration(attempt+1) * s.Backoff
}

// Fired returns how many PlanRound calls injected at least one fault.
func (s *Schedule) Fired() int64 { return s.fired.Load() }

// Salt labels mixed into rng.Derive chains, one per decision dimension,
// so distinct coordinates can never collide onto one random draw.
const (
	saltScope = 0xFA017
	saltKind  = 0x5EED
)

// decide is the random-mode coin flip for one (coordinate, kind):
// deterministic, stateless, uniform in [0,1) against p.
func (s *Schedule) decide(scope mpc.FaultScope, round, machine int, kind uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	scopeLabel := uint64(saltScope)
	if scope.Fork {
		scopeLabel = scopeLabel*31 + 1 + uint64(scope.Rung)*2654435761
	}
	seed := rng.Derive(s.Seed, scopeLabel)
	seed = rng.Derive(seed, uint64(round))
	seed = rng.Derive(seed, uint64(machine)*8+kind+saltKind)
	return rng.New(seed).Float64() < p
}

// PlanRound implements mpc.FaultPolicy. Random-mode faults strike only
// the first attempt of probe incarnation 0 — recovery, once underway, is
// clean — except Abort events, which strike every attempt of incarnation
// 0 so that only a probe-level retry escapes them.
func (s *Schedule) PlanRound(scope mpc.FaultScope, round, attempt int, name string) mpc.RoundFaults {
	var rf mpc.RoundFaults
	for _, e := range s.Events {
		if !e.matches(scope, round, attempt, name) {
			continue
		}
		switch e.Kind {
		case Crash, Abort:
			rf.Crash = append(rf.Crash, e.Machine)
		case Drop:
			rf.DropFrom = append(rf.DropFrom, e.Machine)
		case Duplicate:
			rf.DuplicateFrom = append(rf.DuplicateFrom, e.Machine)
		case Straggler:
			if rf.StragglerDelay == nil {
				rf.StragglerDelay = map[int]int64{}
			}
			rf.StragglerDelay[e.Machine] = e.DelayNanos
		}
	}
	if !s.Rates.zero() && scope.Epoch == 0 && attempt == 0 {
		// Random mode needs machine coordinates; probe them lazily for a
		// bounded range. The simulator ignores out-of-range indices, so
		// over-probing is harmless; maxMachines bounds the work.
		for machine := 0; machine < maxMachines; machine++ {
			if s.decide(scope, round, machine, 0, s.Rates.Crash) {
				rf.Crash = append(rf.Crash, machine)
			}
			if s.decide(scope, round, machine, 1, s.Rates.Drop) {
				rf.DropFrom = append(rf.DropFrom, machine)
			}
			if s.decide(scope, round, machine, 2, s.Rates.Duplicate) {
				rf.DuplicateFrom = append(rf.DuplicateFrom, machine)
			}
			if s.decide(scope, round, machine, 3, s.Rates.Straggler) {
				if rf.StragglerDelay == nil {
					rf.StragglerDelay = map[int]int64{}
				}
				delay := s.Rates.StragglerDelay
				if delay <= 0 {
					delay = 50 * time.Microsecond
				}
				rf.StragglerDelay[machine] = int64(delay)
			}
		}
	}
	if s.Rates.Abort > 0 && scope.Epoch == 0 {
		// Abort rate: decided per round (machine 0 coordinate), striking
		// every attempt, so in-place retries cannot absorb it.
		if s.decide(scope, round, 0, 4, s.Rates.Abort) {
			rf.Crash = append(rf.Crash, 0)
		}
	}
	if !rf.Empty() {
		s.fired.Add(1)
	}
	return rf
}

// maxMachines bounds the machine indices the random mode probes per
// round. Simulated clusters are small (the bench suite tops out well
// below this); indices beyond the actual cluster size are ignored by
// the simulator.
const maxMachines = 64

// ParseSpec parses the CLI fault specification accepted by
// cmd/mpcbench -faults: a comma-separated list of kind:rate pairs, e.g.
// "crash:0.05,drop:0.02,duplicate:0.02,straggler:0.01". Rates must be
// probabilities in [0,1]; unknown kinds and malformed rates are errors.
func ParseSpec(spec string) (Rates, error) {
	var r Rates
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kind, val, ok := strings.Cut(part, ":")
		if !ok {
			return Rates{}, fmt.Errorf("fault: bad spec element %q (want kind:rate)", part)
		}
		p, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || p < 0 || p > 1 {
			return Rates{}, fmt.Errorf("fault: bad rate %q for kind %q (want a probability in [0,1])", val, kind)
		}
		switch Kind(strings.TrimSpace(kind)) {
		case Crash:
			r.Crash = p
		case Drop:
			r.Drop = p
		case Duplicate:
			r.Duplicate = p
		case Straggler:
			r.Straggler = p
		case Abort:
			r.Abort = p
		default:
			return Rates{}, fmt.Errorf("fault: unknown fault kind %q (known: crash, drop, duplicate, straggler, abort)", kind)
		}
	}
	return r, nil
}

// normalizeEvents sorts events into a canonical order (round, machine,
// kind, attempt, epoch) so serialization round-trips compare stably.
func normalizeEvents(events []Event) []Event {
	out := append([]Event(nil), events...)
	sort.SliceStable(out, func(a, b int) bool {
		ea, eb := out[a], out[b]
		if ea.Round != eb.Round {
			return ea.Round < eb.Round
		}
		if ea.Machine != eb.Machine {
			return ea.Machine < eb.Machine
		}
		if ea.Kind != eb.Kind {
			return ea.Kind < eb.Kind
		}
		if ea.Attempt != eb.Attempt {
			return ea.Attempt < eb.Attempt
		}
		return ea.Epoch < eb.Epoch
	})
	return out
}
