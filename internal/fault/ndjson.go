package fault

// NDJSON serialization for Schedules: one JSON object per line, the
// first carrying the schedule configuration (seed, rates, recovery
// allowances) and each subsequent line one explicit event. Because the
// random mode is a pure function of the configuration, a deserialized
// schedule replays the exact fault pattern of the original — the NDJSON
// file is the complete, replayable description of a chaos run.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// scheduleConfig is the wire form of a Schedule's scalar configuration.
type scheduleConfig struct {
	Seed         uint64 `json:"seed,omitempty"`
	Rates        Rates  `json:"rates,omitempty"`
	RoundRetries int    `json:"round_retries,omitempty"`
	ProbeRetries int    `json:"probe_retries,omitempty"`
	BackoffNanos int64  `json:"backoff_ns,omitempty"`
}

// ndjsonLine is one line of the wire format: exactly one of the two
// fields is set.
type ndjsonLine struct {
	Schedule *scheduleConfig `json:"schedule,omitempty"`
	Event    *Event          `json:"event,omitempty"`
}

// WriteNDJSON serializes the schedule: a "schedule" configuration line
// followed by one "event" line per explicit event, in canonical order.
func (s *Schedule) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	cfg := scheduleConfig{
		Seed:         s.Seed,
		Rates:        s.Rates,
		RoundRetries: s.MaxRoundRetries,
		ProbeRetries: s.MaxProbeRetries,
		BackoffNanos: int64(s.Backoff),
	}
	if err := enc.Encode(ndjsonLine{Schedule: &cfg}); err != nil {
		return err
	}
	for _, e := range normalizeEvents(s.Events) {
		e := e
		if err := enc.Encode(ndjsonLine{Event: &e}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses a stream produced by WriteNDJSON back into a
// Schedule. Blank lines are skipped; malformed lines, unknown fault
// kinds, out-of-range rates and duplicate configuration lines are
// errors. A stream with no configuration line yields a pure event
// schedule with zero recovery allowance.
func ReadNDJSON(r io.Reader) (*Schedule, error) {
	s := &Schedule{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line, sawConfig := 0, false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var l ndjsonLine
		if err := json.Unmarshal([]byte(text), &l); err != nil {
			return nil, fmt.Errorf("fault: schedule line %d: %w", line, err)
		}
		switch {
		case l.Schedule != nil:
			if sawConfig {
				return nil, fmt.Errorf("fault: schedule line %d: duplicate schedule configuration", line)
			}
			sawConfig = true
			if err := validRates(l.Schedule.Rates); err != nil {
				return nil, fmt.Errorf("fault: schedule line %d: %w", line, err)
			}
			if l.Schedule.RoundRetries < 0 || l.Schedule.ProbeRetries < 0 || l.Schedule.BackoffNanos < 0 {
				return nil, fmt.Errorf("fault: schedule line %d: negative retry/backoff configuration", line)
			}
			s.Seed = l.Schedule.Seed
			s.Rates = l.Schedule.Rates
			s.MaxRoundRetries = l.Schedule.RoundRetries
			s.MaxProbeRetries = l.Schedule.ProbeRetries
			s.Backoff = time.Duration(l.Schedule.BackoffNanos)
		case l.Event != nil:
			if !knownKind(l.Event.Kind) {
				return nil, fmt.Errorf("fault: schedule line %d: unknown fault kind %q", line, l.Event.Kind)
			}
			if l.Event.Round < -1 || l.Event.Machine < 0 || l.Event.Attempt < 0 ||
				l.Event.Epoch < 0 || l.Event.DelayNanos < 0 {
				return nil, fmt.Errorf("fault: schedule line %d: out-of-range event field", line)
			}
			s.Events = append(s.Events, *l.Event)
		default:
			return nil, fmt.Errorf("fault: schedule line %d: neither schedule nor event", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	s.Events = normalizeEvents(s.Events)
	return s, nil
}

// validRates rejects rates outside [0,1] and negative delays.
func validRates(r Rates) error {
	for _, p := range []float64{r.Crash, r.Drop, r.Duplicate, r.Straggler, r.Abort} {
		if p < 0 || p > 1 || p != p {
			return fmt.Errorf("rate %v outside [0,1]", p)
		}
	}
	if r.StragglerDelay < 0 {
		return fmt.Errorf("negative straggler delay %v", r.StragglerDelay)
	}
	return nil
}
