package fault

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"parclust/internal/mpc"
)

func TestPlanRoundDeterministic(t *testing.T) {
	rates := Rates{Crash: 0.3, Drop: 0.2, Duplicate: 0.2, Straggler: 0.1}
	a := NewRandom(42, rates)
	b := NewRandom(42, rates)
	scopes := []mpc.FaultScope{
		{},
		{Fork: true, Rung: 0},
		{Fork: true, Rung: 3},
		{Epoch: 1},
	}
	fired := false
	for _, scope := range scopes {
		for round := 0; round < 40; round++ {
			pa := a.PlanRound(scope, round, 0, "x")
			pb := b.PlanRound(scope, round, 0, "x")
			if !reflect.DeepEqual(pa, pb) {
				t.Fatalf("scope %+v round %d: plans differ:\n%+v\n%+v", scope, round, pa, pb)
			}
			if !pa.Empty() {
				fired = true
			}
			if scope.Epoch > 0 && !pa.Empty() {
				t.Fatalf("random fault fired at epoch %d: %+v", scope.Epoch, pa)
			}
			// Later attempts of a recovering round stay clean.
			if p1 := a.PlanRound(scope, round, 1, "x"); !p1.Empty() {
				t.Fatalf("random fault fired on attempt 1: %+v", p1)
			}
		}
	}
	if !fired {
		t.Fatal("schedule never fired at these rates over 40 rounds × 4 scopes")
	}
	if a.Fired() == 0 {
		t.Fatal("Fired() = 0 after injecting")
	}
}

func TestForkScopesDrawIndependently(t *testing.T) {
	s := NewRandom(7, Rates{Crash: 0.5})
	var root, rung1 []mpc.RoundFaults
	for round := 0; round < 16; round++ {
		root = append(root, s.PlanRound(mpc.FaultScope{}, round, 0, "x"))
		rung1 = append(rung1, s.PlanRound(mpc.FaultScope{Fork: true, Rung: 1}, round, 0, "x"))
	}
	if reflect.DeepEqual(root, rung1) {
		t.Fatal("root and fork scopes produced identical fault plans — scope is not mixed into the draw")
	}
}

func TestEventMatching(t *testing.T) {
	rung2 := 2
	cases := []struct {
		name    string
		ev      Event
		scope   mpc.FaultScope
		round   int
		attempt int
		label   string
		want    bool
	}{
		{"exact", Event{Round: 3, Machine: 1, Kind: Crash}, mpc.FaultScope{}, 3, 0, "any", true},
		{"wrong-round", Event{Round: 3, Machine: 1, Kind: Crash}, mpc.FaultScope{}, 4, 0, "any", false},
		{"any-round", Event{Round: -1, Machine: 1, Kind: Crash}, mpc.FaultScope{}, 9, 0, "any", true},
		{"wrong-attempt", Event{Round: 3, Machine: 1, Kind: Crash}, mpc.FaultScope{}, 3, 1, "any", false},
		{"pinned-attempt", Event{Round: 3, Machine: 1, Kind: Crash, Attempt: 1}, mpc.FaultScope{}, 3, 1, "any", true},
		{"abort-every-attempt", Event{Round: 3, Machine: 1, Kind: Abort}, mpc.FaultScope{}, 3, 2, "any", true},
		{"epoch-0-vanishes-on-retry", Event{Round: 3, Machine: 1, Kind: Abort}, mpc.FaultScope{Epoch: 1}, 3, 0, "any", false},
		{"epoch-pinned", Event{Round: 3, Machine: 1, Kind: Crash, Epoch: 1}, mpc.FaultScope{Epoch: 1}, 3, 0, "any", true},
		{"rung-scoped-hit", Event{Round: 0, Machine: 0, Kind: Crash, Rung: &rung2}, mpc.FaultScope{Fork: true, Rung: 2}, 0, 0, "any", true},
		{"rung-scoped-other-rung", Event{Round: 0, Machine: 0, Kind: Crash, Rung: &rung2}, mpc.FaultScope{Fork: true, Rung: 3}, 0, 0, "any", false},
		{"rung-scoped-root", Event{Round: 0, Machine: 0, Kind: Crash, Rung: &rung2}, mpc.FaultScope{}, 0, 0, "any", false},
		{"name-prefix-hit", Event{Round: -1, Machine: 0, Kind: Crash, Name: "kbmis/"}, mpc.FaultScope{}, 5, 0, "kbmis/sample", true},
		{"name-prefix-miss", Event{Round: -1, Machine: 0, Kind: Crash, Name: "kbmis/"}, mpc.FaultScope{}, 5, 0, "coreset/local-gmm", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := FromEvents(tc.ev)
			got := !s.PlanRound(tc.scope, tc.round, tc.attempt, tc.label).Empty()
			if got != tc.want {
				t.Fatalf("fired = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPlanRoundKindsRouted(t *testing.T) {
	s := FromEvents(
		Event{Round: 0, Machine: 0, Kind: Crash},
		Event{Round: 0, Machine: 1, Kind: Drop},
		Event{Round: 0, Machine: 2, Kind: Duplicate},
		Event{Round: 0, Machine: 3, Kind: Straggler, DelayNanos: 500},
	)
	rf := s.PlanRound(mpc.FaultScope{}, 0, 0, "x")
	if !reflect.DeepEqual(rf.Crash, []int{0}) || !reflect.DeepEqual(rf.DropFrom, []int{1}) ||
		!reflect.DeepEqual(rf.DuplicateFrom, []int{2}) || rf.StragglerDelay[3] != 500 {
		t.Fatalf("kinds misrouted: %+v", rf)
	}
}

func TestParseSpec(t *testing.T) {
	good, err := ParseSpec("crash:0.05, drop:0.02,duplicate:1,straggler:0, abort:0.5")
	if err != nil {
		t.Fatal(err)
	}
	want := Rates{Crash: 0.05, Drop: 0.02, Duplicate: 1, Straggler: 0, Abort: 0.5}
	if good != want {
		t.Fatalf("parsed %+v, want %+v", good, want)
	}
	if r, err := ParseSpec(""); err != nil || !r.zero() {
		t.Fatalf("empty spec: %+v, %v", r, err)
	}
	for _, bad := range []string{
		"crash",          // no rate
		"meteor:0.1",     // unknown kind
		"crash:1.5",      // rate above 1
		"crash:-0.1",     // negative rate
		"crash:lots",     // non-numeric rate
		"crash:0.1,drop", // trailing junk
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	rung := 4
	s := &Schedule{
		Seed: 99,
		Rates: Rates{
			Crash: 0.1, Drop: 0.05, Duplicate: 0.02, Straggler: 0.01,
			StragglerDelay: 3 * time.Microsecond,
		},
		MaxRoundRetries: 2,
		MaxProbeRetries: 1,
		Backoff:         time.Millisecond,
		Events: []Event{
			{Round: 7, Machine: 2, Kind: Drop, Attempt: 1},
			{Round: -1, Machine: 0, Kind: Abort, Name: "kbmis/"},
			{Round: 3, Machine: 1, Kind: Straggler, DelayNanos: 1000, Rung: &rung},
		},
	}
	var buf bytes.Buffer
	if err := s.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadNDJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	s.Events = normalizeEvents(s.Events)
	if got.Seed != s.Seed || got.Rates != s.Rates || got.MaxRoundRetries != s.MaxRoundRetries ||
		got.MaxProbeRetries != s.MaxProbeRetries || got.Backoff != s.Backoff {
		t.Fatalf("config mismatch:\nwant %+v\ngot  %+v", s, got)
	}
	if !reflect.DeepEqual(got.Events, s.Events) {
		t.Fatalf("events mismatch:\nwant %+v\ngot  %+v", s.Events, got.Events)
	}
	// A second serialization must be byte-identical (canonical order).
	var buf2 bytes.Buffer
	if err := got.WriteNDJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-serialization differs:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
	}
	// And the deserialized schedule replays the exact fault pattern.
	for round := 0; round < 20; round++ {
		a := s.PlanRound(mpc.FaultScope{}, round, 0, "kbmis/sample")
		b := got.PlanRound(mpc.FaultScope{}, round, 0, "kbmis/sample")
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("round %d replay differs: %+v vs %+v", round, a, b)
		}
	}
}

func TestReadNDJSONErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"garbage", "not json\n"},
		{"neither", `{"something":1}` + "\n"},
		{"unknown-kind", `{"event":{"round":0,"machine":0,"kind":"meteor"}}` + "\n"},
		{"bad-round", `{"event":{"round":-2,"machine":0,"kind":"crash"}}` + "\n"},
		{"bad-machine", `{"event":{"round":0,"machine":-1,"kind":"crash"}}` + "\n"},
		{"bad-delay", `{"event":{"round":0,"machine":0,"kind":"straggler","delay_ns":-5}}` + "\n"},
		{"bad-rate", `{"schedule":{"rates":{"crash":1.5}}}` + "\n"},
		{"negative-retries", `{"schedule":{"round_retries":-1}}` + "\n"},
		{"duplicate-config", `{"schedule":{}}` + "\n" + `{"schedule":{}}` + "\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadNDJSON(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
		})
	}
	// Blank lines and a missing config line are fine.
	s, err := ReadNDJSON(strings.NewReader("\n" + `{"event":{"round":0,"machine":0,"kind":"crash"}}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 1 || s.MaxRoundRetries != 0 {
		t.Fatalf("event-only schedule: %+v", s)
	}
}
