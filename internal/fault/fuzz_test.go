package fault

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzScheduleNDJSON asserts the parser never panics on arbitrary input
// and that every accepted schedule round-trips to a fixed point:
// serialize(parse(x)) parses back to an equal schedule with an identical
// serialization (canonical form). The seed corpus covers the config
// line, every fault kind, wildcard rounds, rung scoping and the
// boundary values the validator must reject.
func FuzzScheduleNDJSON(f *testing.F) {
	seeds := []string{
		"",
		"\n\n",
		`{"schedule":{"seed":7,"rates":{"crash":0.1,"drop":0.05},"round_retries":2,"probe_retries":1,"backoff_ns":1000}}` + "\n",
		`{"schedule":{}}` + "\n" + `{"event":{"round":0,"machine":0,"kind":"crash"}}` + "\n",
		`{"event":{"round":-1,"machine":1,"kind":"abort","name":"kbmis/"}}` + "\n",
		`{"event":{"round":3,"machine":2,"kind":"drop","attempt":1,"epoch":1}}` + "\n",
		`{"event":{"round":0,"machine":0,"kind":"straggler","delay_ns":500,"rung":4}}` + "\n",
		`{"event":{"round":5,"machine":3,"kind":"duplicate"}}` + "\n",
		`{"schedule":{"rates":{"crash":1.5}}}` + "\n",
		`{"event":{"round":-2,"machine":0,"kind":"crash"}}` + "\n",
		`{"event":{"round":0,"machine":0,"kind":"meteor"}}` + "\n",
		`{"bogus":true}` + "\n",
		"not json at all",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadNDJSON(bytes.NewReader(data))
		if err != nil {
			return // rejected input — fine, as long as we did not panic
		}
		var buf bytes.Buffer
		if err := s.WriteNDJSON(&buf); err != nil {
			t.Fatalf("serializing an accepted schedule failed: %v", err)
		}
		s2, err := ReadNDJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, buf.Bytes())
		}
		if s.Seed != s2.Seed || s.Rates != s2.Rates || s.MaxRoundRetries != s2.MaxRoundRetries ||
			s.MaxProbeRetries != s2.MaxProbeRetries || s.Backoff != s2.Backoff ||
			!reflect.DeepEqual(s.Events, s2.Events) {
			t.Fatalf("round-trip not a fixed point:\nfirst:  %+v\nsecond: %+v", s, s2)
		}
		var buf2 bytes.Buffer
		if err := s2.WriteNDJSON(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("canonical serialization unstable:\n%s\nvs\n%s", buf.Bytes(), buf2.Bytes())
		}
	})
}
