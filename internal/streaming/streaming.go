// Package streaming implements the doubling algorithm for incremental
// (streaming) k-center (Charikar, Chekuri, Feder, Motwani, STOC 1997):
// a one-pass 8-approximation using O(k) memory.
//
// The paper's related work tracks the streaming sibling of the MPC story
// (Ceccarello et al. [6] solve k-center in both models); this package
// completes that axis: the same GMM/threshold intuitions, but points
// arrive one at a time and may never be revisited.
package streaming

import (
	"math"

	"parclust/internal/metric"
)

// Stream is an incremental k-center clusterer. Create one with New, feed
// points with Add, and read Centers/R at any time. Once more than k
// points have been seen, the following invariants hold between Add calls:
//
//  1. at most k centers are stored;
//  2. centers are pairwise further than 4R apart;
//  3. every point seen so far is within 8R of some center;
//  4. R is at most the optimal k-center radius of the points seen
//     ((2) plus pigeonhole: k+1 points pairwise > 4R existed when R last
//     doubled, so two of them share an optimal center).
//
// (3) + (4) give the 8-approximation.
type Stream struct {
	k       int
	r       float64
	centers []metric.Point
	space   metric.Space
	seen    int
	// init reports the bootstrap (first k+1 points) is complete.
	init bool
}

// New returns an empty stream clusterer for k ≥ 1 centers (k < 1 is
// clamped to 1).
func New(space metric.Space, k int) *Stream {
	if k < 1 {
		k = 1
	}
	return &Stream{k: k, space: space}
}

// Add feeds one point.
func (s *Stream) Add(p metric.Point) {
	s.seen++
	if !s.init {
		// Bootstrap: keep the first k+1 distinct-position points verbatim.
		s.centers = append(s.centers, p.Clone())
		if len(s.centers) == s.k+1 {
			// Initialize R from the closest pair, then merge down.
			s.r = s.closestPair() / 4
			if s.r == 0 {
				// Duplicates exist; drop one and stay in bootstrap with
				// k centers at R = 0.
				s.dropOneDuplicate()
				return
			}
			s.init = true
			s.merge()
		}
		return
	}
	if metric.DistToSet(s.space, p, s.centers) <= 4*s.r {
		return // covered
	}
	s.centers = append(s.centers, p.Clone())
	s.merge()
}

// merge restores |centers| ≤ k by doubling R and keeping a maximal
// subset of centers pairwise further than 4R apart.
func (s *Stream) merge() {
	for len(s.centers) > s.k {
		if s.r == 0 {
			s.r = s.closestPair() / 4
			if s.r == 0 {
				s.dropOneDuplicate()
				continue
			}
		}
		s.r *= 2
		kept := s.centers[:0:0]
		for _, c := range s.centers {
			if metric.DistToSet(s.space, c, kept) > 4*s.r {
				kept = append(kept, c)
			}
		}
		s.centers = kept
	}
}

// closestPair returns the minimum pairwise distance among centers.
func (s *Stream) closestPair() float64 {
	best := math.Inf(1)
	for i := 0; i < len(s.centers); i++ {
		for j := i + 1; j < len(s.centers); j++ {
			if d := s.space.Dist(s.centers[i], s.centers[j]); d < best {
				best = d
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// dropOneDuplicate removes one member of a zero-distance pair.
func (s *Stream) dropOneDuplicate() {
	for i := 0; i < len(s.centers); i++ {
		for j := i + 1; j < len(s.centers); j++ {
			if s.space.Dist(s.centers[i], s.centers[j]) == 0 {
				s.centers = append(s.centers[:j], s.centers[j+1:]...)
				return
			}
		}
	}
	// No duplicate found (cannot happen when called with r == 0 and
	// > k centers); drop the last to guarantee progress.
	s.centers = s.centers[:len(s.centers)-1]
}

// Centers returns the current centers (at most k once more than k points
// have been seen). The returned slice is owned by the stream.
func (s *Stream) Centers() []metric.Point { return s.centers }

// R returns the current phase radius; every point seen is within 8R of a
// center and R ≤ opt (see type docs).
func (s *Stream) R() float64 { return s.r }

// Seen returns the number of points fed so far.
func (s *Stream) Seen() int { return s.seen }

// RadiusBound returns the certified covering radius 8R (0 while still in
// bootstrap, where the centers are the points themselves).
func (s *Stream) RadiusBound() float64 { return 8 * s.r }
