// Package streaming implements the doubling algorithm for incremental
// (streaming) k-center (Charikar, Chekuri, Feder, Motwani, STOC 1997):
// a one-pass 8-approximation using O(k) memory.
//
// The paper's related work tracks the streaming sibling of the MPC story
// (Ceccarello et al. [6] solve k-center in both models); this package
// completes that axis: the same GMM/threshold intuitions, but points
// arrive one at a time and may never be revisited.
package streaming

import (
	"math"

	"parclust/internal/metric"
)

// Stream is an incremental k-center clusterer. Create one with New, feed
// points with Add, and read Centers/R at any time. A Stream is not
// goroutine-safe: callers that share one across goroutines (the serving
// layer's shards) must serialize every method call, reads included,
// behind their own lock. Once more than k distinct positions have been
// seen (streams with fewer stay in bootstrap, holding each distinct
// position as a radius-0 center), the following invariants hold between
// Add calls:
//
//  1. at most k centers are stored;
//  2. centers are pairwise further than 4R apart;
//  3. every point seen so far is within 8R of some center;
//  4. R is at most the optimal k-center radius of the points seen
//     ((2) plus pigeonhole: k+1 points pairwise > 4R existed when R last
//     doubled, so two of them share an optimal center).
//
// (3) + (4) give the 8-approximation.
type Stream struct {
	k       int
	r       float64
	centers []metric.Point
	space   metric.Space
	seen    int
	// init reports the bootstrap (first k+1 points) is complete.
	init bool
}

// New returns an empty stream clusterer for k ≥ 1 centers (k < 1 is
// clamped to 1).
func New(space metric.Space, k int) *Stream {
	if k < 1 {
		k = 1
	}
	return &Stream{k: k, space: space}
}

// Add feeds one point.
func (s *Stream) Add(p metric.Point) {
	s.seen++
	if !s.init {
		// Bootstrap: keep the first k+1 distinct-position points. A point
		// at distance 0 from a stored center is skipped — it is covered at
		// radius 0, and appending it would let an all-duplicate stream
		// hold k coincident "centers" (breaking the pairwise-separation
		// invariant at R = 0) while re-running an O(k²) closest-pair scan
		// on every later Add. Skipping keeps the bootstrap centers at
		// pairwise positive distance, so when the (k+1)-th distinct
		// position arrives closestPair() > 0 and the stream leaves
		// bootstrap with R > 0; a stream that never shows k+1 distinct
		// positions stays in bootstrap forever, exactly: its centers are
		// the ≤ k distinct positions, an optimal radius-0 solution.
		if len(s.centers) > 0 && metric.DistToSet(s.space, p, s.centers) == 0 {
			return
		}
		s.centers = append(s.centers, p.Clone())
		if len(s.centers) == s.k+1 {
			// Initialize R from the closest pair (positive, per above),
			// then merge down.
			s.r = s.closestPair() / 4
			s.init = true
			s.merge()
		}
		return
	}
	if metric.DistToSet(s.space, p, s.centers) <= 4*s.r {
		return // covered — re-fed positions land here (distance 0 ≤ 4R)
	}
	s.centers = append(s.centers, p.Clone())
	s.merge()
}

// merge restores |centers| ≤ k by doubling R and keeping a maximal
// subset of centers pairwise further than 4R apart. R is positive on
// entry (bootstrap only completes with a positive closest pair, and
// doubling preserves positivity), so each iteration strictly grows R and
// the loop terminates: any finite center set collapses to one point once
// 4R exceeds its diameter.
func (s *Stream) merge() {
	for len(s.centers) > s.k {
		s.r *= 2
		kept := s.centers[:0:0]
		for _, c := range s.centers {
			if metric.DistToSet(s.space, c, kept) > 4*s.r {
				kept = append(kept, c)
			}
		}
		s.centers = kept
	}
}

// closestPair returns the minimum pairwise distance among centers.
func (s *Stream) closestPair() float64 {
	best := math.Inf(1)
	for i := 0; i < len(s.centers); i++ {
		for j := i + 1; j < len(s.centers); j++ {
			if d := s.space.Dist(s.centers[i], s.centers[j]); d < best {
				best = d
			}
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// Centers returns a copy of the current centers (at most k once more
// than k distinct positions have been seen). The copy is the caller's to
// keep: merge() replaces the internal slice on a later Add, so handing
// out the live slice would silently invalidate — or alias future
// mutations into — any cached result, exactly the hazard a serving
// layer caching coresets between re-solves cannot tolerate. The center
// points themselves are never mutated after insertion (Add clones), so
// copying the slice header contents is enough.
func (s *Stream) Centers() []metric.Point {
	out := make([]metric.Point, len(s.centers))
	copy(out, s.centers)
	return out
}

// NumCenters returns the current center count without copying.
func (s *Stream) NumCenters() int { return len(s.centers) }

// R returns the current phase radius; every point seen is within 8R of a
// center and R ≤ opt (see type docs).
func (s *Stream) R() float64 { return s.r }

// Seen returns the number of points fed so far.
func (s *Stream) Seen() int { return s.seen }

// RadiusBound returns the certified covering radius 8R (0 while still in
// bootstrap, where the centers are the points themselves).
func (s *Stream) RadiusBound() float64 { return 8 * s.r }
