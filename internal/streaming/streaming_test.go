package streaming

import (
	"testing"
	"testing/quick"

	"parclust/internal/metric"
	"parclust/internal/rng"
	"parclust/internal/seq"
	"parclust/internal/workload"
)

func feed(s *Stream, pts []metric.Point) {
	for _, p := range pts {
		s.Add(p)
	}
}

func TestBootstrapKeepsAllPoints(t *testing.T) {
	s := New(metric.L2{}, 5)
	feed(s, workload.Line(4))
	if len(s.Centers()) != 4 || s.R() != 0 {
		t.Fatalf("bootstrap: %d centers, R=%v", len(s.Centers()), s.R())
	}
	if s.Seen() != 4 {
		t.Fatalf("seen = %d", s.Seen())
	}
}

func TestAtMostKCentersAfterBootstrap(t *testing.T) {
	r := rng.New(1)
	pts := workload.UniformCube(r, 500, 2, 100)
	s := New(metric.L2{}, 7)
	feed(s, pts)
	if len(s.Centers()) > 7 {
		t.Fatalf("%d centers", len(s.Centers()))
	}
	if s.R() <= 0 {
		t.Fatalf("R = %v", s.R())
	}
}

func TestCoverageInvariant(t *testing.T) {
	r := rng.New(2)
	pts := workload.UniformCube(r, 400, 2, 50)
	s := New(metric.L2{}, 5)
	for i, p := range pts {
		s.Add(p)
		if i >= 5 {
			// Every point seen so far within 8R.
			for _, q := range pts[:i+1] {
				if metric.DistToSet(metric.L2{}, q, s.Centers()) > s.RadiusBound()+1e-9 {
					t.Fatalf("point %v outside 8R=%v after %d adds", q, s.RadiusBound(), i+1)
				}
			}
		}
	}
}

func TestCentersPairwiseSeparated(t *testing.T) {
	r := rng.New(3)
	pts := workload.UniformCube(r, 600, 2, 80)
	s := New(metric.L2{}, 6)
	feed(s, pts)
	cs := s.Centers()
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			if d := (metric.L2{}).Dist(cs[i], cs[j]); d <= 4*s.R()-1e-9 {
				t.Fatalf("centers %d,%d at distance %v ≤ 4R=%v", i, j, d, 4*s.R())
			}
		}
	}
}

// Factor 8 against brute-force optima on tiny instances.
func TestEightApproxTiny(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 30; trial++ {
		pts := make([]metric.Point, 12)
		for i := range pts {
			pts[i] = metric.Point{r.Float64() * 100, r.Float64() * 100}
		}
		k := 2 + trial%2
		s := New(metric.L2{}, k)
		feed(s, pts)
		radius := metric.Radius(metric.L2{}, pts, s.Centers())
		opt, _ := seq.ExactKCenter(metric.L2{}, pts, k)
		if radius > 8*opt+1e-9 {
			t.Fatalf("trial %d: streaming radius %v > 8·opt %v", trial, radius, opt)
		}
	}
}

// R never exceeds the optimal radius (invariant 4).
func TestRLowerBoundsOpt(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		pts := make([]metric.Point, 10)
		for i := range pts {
			pts[i] = metric.Point{r.Float64() * 50}
		}
		k := 2
		s := New(metric.L2{}, k)
		feed(s, pts)
		opt, _ := seq.ExactKCenter(metric.L2{}, pts, k)
		if s.R() > opt+1e-9 {
			t.Fatalf("trial %d: R=%v exceeds opt=%v", trial, s.R(), opt)
		}
	}
}

func TestDuplicateStream(t *testing.T) {
	s := New(metric.L2{}, 2)
	for i := 0; i < 20; i++ {
		s.Add(metric.Point{7, 7})
	}
	if len(s.Centers()) > 2 {
		t.Fatalf("%d centers on constant stream", len(s.Centers()))
	}
	if r := metric.Radius(metric.L2{}, []metric.Point{{7, 7}}, s.Centers()); r != 0 {
		t.Fatalf("radius %v on constant stream", r)
	}
}

func TestMixedDuplicatesThenSpread(t *testing.T) {
	s := New(metric.L2{}, 2)
	for i := 0; i < 5; i++ {
		s.Add(metric.Point{0})
	}
	s.Add(metric.Point{100})
	s.Add(metric.Point{200})
	s.Add(metric.Point{300})
	if len(s.Centers()) > 2 {
		t.Fatalf("%d centers", len(s.Centers()))
	}
	all := []metric.Point{{0}, {100}, {200}, {300}}
	radius := metric.Radius(metric.L2{}, all, s.Centers())
	opt, _ := seq.ExactKCenter(metric.L2{}, all, 2)
	if radius > 8*opt+1e-9 {
		t.Fatalf("radius %v > 8·opt %v", radius, opt)
	}
}

// Bootstrap edge cases: duplicate-heavy streams must neither loop nor
// leave the stream holding coincident centers, and duplicate
// re-insertion after bootstrap must preserve invariants (1)–(4).
func TestBootstrapEdgeCases(t *testing.T) {
	space := metric.L2{}
	dup := func(p metric.Point, n int) []metric.Point {
		out := make([]metric.Point, n)
		for i := range out {
			out[i] = p
		}
		return out
	}
	cases := []struct {
		name        string
		k           int
		pts         []metric.Point
		wantCenters int
		wantR0      bool // R must still be exactly 0 (bootstrap regime)
	}{
		{"all-duplicate", 3, dup(metric.Point{7, 7}, 50), 1, true},
		{"two-positions-interleaved", 3,
			[]metric.Point{{0, 0}, {1, 0}, {0, 0}, {1, 0}, {0, 0}, {1, 0}}, 2, true},
		{"k-distinct-then-duplicates", 3,
			append([]metric.Point{{0, 0}, {1, 0}, {2, 0}}, dup(metric.Point{1, 0}, 10)...), 3, true},
		{"duplicates-then-escape", 2,
			append(dup(metric.Point{0, 0}, 10), metric.Point{50, 0}, metric.Point{100, 0}, metric.Point{150, 0}), -1, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(space, tc.k)
			feed(s, tc.pts)
			if tc.wantCenters >= 0 && len(s.Centers()) != tc.wantCenters {
				t.Fatalf("%d centers, want %d", len(s.Centers()), tc.wantCenters)
			}
			if len(s.Centers()) > tc.k {
				t.Fatalf("invariant (1): %d centers > k=%d", len(s.Centers()), tc.k)
			}
			if tc.wantR0 != (s.R() == 0) {
				t.Fatalf("R = %v, want zero=%v", s.R(), tc.wantR0)
			}
			checkInvariants(t, space, s, tc.pts)
		})
	}
}

// Duplicate re-insertion after bootstrap: replaying the whole stream
// (every position now a duplicate of a seen one) must change nothing.
func TestPostBootstrapDuplicateReinsertion(t *testing.T) {
	space := metric.L2{}
	r := rng.New(11)
	pts := workload.UniformCube(r, 60, 2, 40)
	s := New(space, 4)
	feed(s, pts)
	if s.R() <= 0 {
		t.Fatalf("not out of bootstrap: R = %v", s.R())
	}
	centersBefore := append([]metric.Point(nil), s.Centers()...)
	rBefore := s.R()
	feed(s, pts) // every point is within 8R (indeed within its own 0) — absorbed
	if s.R() != rBefore {
		t.Fatalf("R changed on duplicate replay: %v -> %v", rBefore, s.R())
	}
	if len(s.Centers()) != len(centersBefore) {
		t.Fatalf("centers changed on duplicate replay: %d -> %d", len(centersBefore), len(s.Centers()))
	}
	checkInvariants(t, space, s, pts)
}

// checkInvariants asserts the Stream type's documented invariants
// (1)–(3) over the fed points; (4) follows from (2) and is checked
// against brute force where the instance is small.
func checkInvariants(t *testing.T, space metric.Space, s *Stream, pts []metric.Point) {
	t.Helper()
	cs := s.Centers()
	rr := s.R()
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			if d := space.Dist(cs[i], cs[j]); d <= 4*rr {
				t.Fatalf("invariant (2): centers %d,%d at distance %v ≤ 4R=%v", i, j, d, 4*rr)
			}
		}
	}
	for _, p := range pts {
		if d := metric.DistToSet(space, p, cs); d > 8*rr+1e-9 {
			t.Fatalf("invariant (3): point %v at distance %v > 8R=%v", p, d, 8*rr)
		}
	}
	if len(pts) <= 16 {
		if opt, _ := seq.ExactKCenter(space, pts, s.k); rr > opt+1e-9 {
			t.Fatalf("invariant (4): R=%v > opt=%v", rr, opt)
		}
	}
}

func TestKClamped(t *testing.T) {
	s := New(metric.L2{}, 0)
	feed(s, workload.Line(10))
	if len(s.Centers()) > 1 {
		t.Fatalf("k clamp failed: %d centers", len(s.Centers()))
	}
}

// Property: across random streams, the invariants hold at the end.
func TestInvariantsProperty(t *testing.T) {
	r := rng.New(6)
	space := metric.L2{}
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%100 + 1
		k := int(kRaw)%6 + 1
		pts := workload.UniformCube(r, n, 2, 30)
		s := New(space, k)
		feed(s, pts)
		if n > k && len(s.Centers()) > k {
			return false
		}
		for _, p := range pts {
			bound := s.RadiusBound()
			if n <= k || bound == 0 {
				// Bootstrap regime: centers are the points themselves
				// (minus dropped duplicates at distance 0).
				if metric.DistToSet(space, p, s.Centers()) > 0 {
					return false
				}
				continue
			}
			if metric.DistToSet(space, p, s.Centers()) > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// The stream's answer is comparable to offline GMM (within the 8/2 = 4×
// certified gap) on large inputs.
func TestComparableToGMMAtScale(t *testing.T) {
	r := rng.New(7)
	pts := workload.GaussianMixture(r, 2000, 2, 6, 1000, 2)
	k := 6
	s := New(metric.L2{}, k)
	feed(s, pts)
	streamRad := metric.Radius(metric.L2{}, pts, s.Centers())
	lb := seq.KCenterLowerBound(metric.L2{}, pts, k)
	if lb > 0 && streamRad > 8*2*lb+1e-9 {
		t.Fatalf("stream radius %v vs lower bound %v: outside 16×", streamRad, lb)
	}
}
