package streaming

// The per-Add invariant property suite: the type docs promise invariants
// (1)–(4) hold *between Add calls*, i.e. after every single Add, not
// just at stream end. The serving layer snapshots a shard's centers at
// arbitrary mutation boundaries, so the per-Add form is the one it
// actually leans on. Streams here are adversarially mixed: fresh random
// points, exact duplicates of earlier points, near-duplicates (earlier
// points plus sub-R jitter), and float32-exact points produced by the
// same rounding as instance.Round32 (the f32-lane workloads).

import (
	"math"
	"testing"

	"parclust/internal/instance"
	"parclust/internal/metric"
	"parclust/internal/rng"
	"parclust/internal/seq"
	"parclust/internal/workload"
)

// round32Point mirrors instance.Round32's coordinate rounding for a
// single point (float64 → float32 → float64, exactly representable).
func round32Point(p metric.Point) metric.Point {
	q := make(metric.Point, len(p))
	for i, x := range p {
		q[i] = float64(float32(x))
	}
	return q
}

// mixedStream draws n points: 50% fresh uniform, 20% exact duplicates of
// an earlier point, 20% near-duplicates (earlier point + tiny jitter),
// 10% Round32-rounded fresh points. The first point is always fresh.
func mixedStream(r *rng.RNG, n, dim int, side float64) []metric.Point {
	pts := make([]metric.Point, 0, n)
	fresh := func() metric.Point {
		p := make(metric.Point, dim)
		for j := range p {
			p[j] = side * r.Float64()
		}
		return p
	}
	for len(pts) < n {
		var p metric.Point
		switch roll := r.Float64(); {
		case len(pts) == 0 || roll < 0.5:
			p = fresh()
		case roll < 0.7: // exact duplicate
			p = pts[r.Intn(len(pts))].Clone()
		case roll < 0.9: // near-duplicate: jitter far below the point scale
			p = pts[r.Intn(len(pts))].Clone()
			for j := range p {
				p[j] += 1e-9 * side * (r.Float64() - 0.5)
			}
		default: // float32-exact, as instance.Round32 would produce
			p = round32Point(fresh())
		}
		pts = append(pts, p)
	}
	return pts
}

// assertInvariants checks invariants (1)–(3) exactly and (4) against the
// exact optimum when the prefix is small enough to brute-force.
func assertInvariants(t *testing.T, space metric.Space, s *Stream, prefix []metric.Point, step int) {
	t.Helper()
	cs := s.Centers()
	rr := s.R()
	bound := s.RadiusBound()
	if rr > 0 {
		// Invariant (1): post-bootstrap, at most k centers.
		if len(cs) > s.k {
			t.Fatalf("add %d: invariant (1): %d centers > k=%d", step, len(cs), s.k)
		}
	}
	// Invariant (2): pairwise separation > 4R. In bootstrap R = 0 and the
	// invariant degenerates to distinct positions (pairwise > 0), which
	// the distinct-position bootstrap guarantees.
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			if d := space.Dist(cs[i], cs[j]); d <= 4*rr {
				t.Fatalf("add %d: invariant (2): centers %d,%d at distance %v <= 4R=%v",
					step, i, j, d, 4*rr)
			}
		}
	}
	// Invariant (3): every point seen so far within 8R of a center
	// (within 0 during bootstrap, where centers are the distinct
	// positions themselves).
	for _, p := range prefix {
		if d := metric.DistToSet(space, p, cs); d > bound+1e-9 {
			t.Fatalf("add %d: invariant (3): point at distance %v > 8R=%v", step, d, bound)
		}
	}
	// Invariant (4): R never exceeds the optimal k-center radius of the
	// prefix. Exact optimum is exponential in k, so only small prefixes
	// are brute-forced — the streams below keep (n, k) inside that range
	// for dedicated runs.
	if len(prefix) <= 12 && s.k <= 3 {
		if opt, _ := seq.ExactKCenter(space, prefix, s.k); rr > opt+1e-9 {
			t.Fatalf("add %d: invariant (4): R=%v > opt=%v", step, rr, opt)
		}
	}
}

// TestInvariantsAfterEveryAdd drives randomized mixed streams and checks
// the full invariant set after every single Add.
func TestInvariantsAfterEveryAdd(t *testing.T) {
	space := metric.L2{}
	for trial := 0; trial < 30; trial++ {
		r := rng.New(uint64(1000 + trial))
		k := 1 + r.Intn(5)
		n := 20 + r.Intn(80)
		pts := mixedStream(r, n, 1+r.Intn(3), 100)
		s := New(space, k)
		for i, p := range pts {
			s.Add(p)
			assertInvariants(t, space, s, pts[:i+1], i)
		}
		if s.Seen() != n {
			t.Fatalf("trial %d: Seen=%d, want %d", trial, s.Seen(), n)
		}
	}
}

// TestInvariantFourExactSmall pins invariant (4) — R ≤ opt — after every
// Add on streams small enough to compare against the exact optimum the
// whole way through, including all-duplicate and near-duplicate mixes.
func TestInvariantFourExactSmall(t *testing.T) {
	space := metric.L2{}
	for trial := 0; trial < 40; trial++ {
		r := rng.New(uint64(7000 + trial))
		k := 1 + r.Intn(3)
		pts := mixedStream(r, 12, 2, 50)
		s := New(space, k)
		for i, p := range pts {
			s.Add(p)
			assertInvariants(t, space, s, pts[:i+1], i)
		}
	}
}

// TestInvariantsRound32Exact feeds a stream whose every coordinate is
// float32-exact (the f32 kernel-lane regime, via the same rounding as
// instance.Round32) and checks the per-Add invariants; rounding
// collisions produce extra exact duplicates by construction.
func TestInvariantsRound32Exact(t *testing.T) {
	space := metric.L2{}
	r := rng.New(42)
	raw := workload.UniformCube(r, 150, 2, 1)
	pts := make([]metric.Point, len(raw))
	for i, p := range raw {
		pts[i] = round32Point(p)
	}
	// Route a few through an actual instance.Round32 round-trip so the
	// test exercises the exported path, not just the local mirror.
	in := instance.New(space, [][]metric.Point{pts[:10]}).Round32()
	copy(pts[:10], in.Parts[0])

	s := New(space, 4)
	for i, p := range pts {
		s.Add(p)
		assertInvariants(t, space, s, pts[:i+1], i)
		for _, c := range s.Centers() {
			for _, x := range c {
				if x != float64(float32(x)) {
					t.Fatalf("add %d: center coordinate %v not float32-exact", i, x)
				}
			}
		}
	}
	if math.IsNaN(s.R()) || s.R() < 0 {
		t.Fatalf("R = %v", s.R())
	}
}
