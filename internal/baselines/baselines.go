// Package baselines implements the prior state-of-the-art MPC algorithms
// the paper improves on, used by the benchmark harness to reproduce the
// paper's headline comparisons:
//
//   - Malkomes et al. (NeurIPS 2015) [22]: two-round 4-approximation for
//     k-center via GMM composable coresets.
//   - Indyk et al. (PODC 2014) [19]: two-round 6-approximation for
//     k-diversity via 3-composable coresets (GMM per machine, GMM again
//     centrally).
//   - A uniform random k-subset, the sanity-check strawman.
//
// Both coreset baselines reuse the shared two-round distributed GMM step
// (package coreset); they genuinely are the same communication pattern as
// the paper's lines 1–2, differing only in what is done with the result.
package baselines

import (
	"fmt"

	"parclust/internal/coreset"
	"parclust/internal/instance"
	"parclust/internal/metric"
	"parclust/internal/mpc"
)

// KCenterResult is a baseline k-center solution.
type KCenterResult struct {
	Centers []metric.Point
	IDs     []int
	// Radius is the measured covering radius r(V, Centers).
	Radius float64
}

// MalkomesKCenter runs the two-round composable-coreset k-center
// algorithm of Malkomes et al.: GMM locally, GMM on the union centrally.
// Guaranteed 4-approximate; measured radius is returned.
func MalkomesKCenter(c *mpc.Cluster, in *instance.Instance, k int) (*KCenterResult, error) {
	cs, err := coreset.Collect(c, in, k)
	if err != nil {
		return nil, err
	}
	radius, err := coreset.BroadcastRadius(c, in, cs.Central)
	if err != nil {
		return nil, err
	}
	return &KCenterResult{Centers: cs.Central, IDs: cs.CentralIDs, Radius: radius}, nil
}

// AGKCenterResult is the Aghamolaei–Ghodsi composable-coreset k-center
// solution: like KCenterResult plus the composition's certified radius
// bound.
type AGKCenterResult struct {
	Centers []metric.Point
	IDs     []int
	// Radius is the measured covering radius r(V, Centers); Bound is the
	// composition's certificate r(T, S) + max_i r_i, valid without
	// touching the full point set again.
	Radius float64
	Bound  float64
}

// AghamolaeiGhodsiKCenter runs the data-distributed composable-coreset
// k-center composition of Aghamolaei–Ghodsi (PAPERS.md): each machine
// ships its local GMM selection T_i together with the one-word local
// covering radius r_i = r(V_i, T_i); the central machine selects
// S = GMM(∪T_i, k) and certifies r(V, S) ≤ r(∪T_i, S) + max_i r_i from
// the shipped words alone. Only the abstract of the source paper is
// available, so this follows its composition shape — per-shard GMM plus
// per-shard radius word, central merge — and reports factors as
// measured, without claiming the paper's proof constants. The measured
// radius additionally uses the shared BroadcastRadius rounds so
// head-to-head comparisons are exact.
func AghamolaeiGhodsiKCenter(c *mpc.Cluster, in *instance.Instance, k int) (*AGKCenterResult, error) {
	cs, err := coreset.Collect(c, in, k)
	if err != nil {
		return nil, err
	}
	// Ship the per-machine local radii (one word each) and fold the
	// certificate centrally.
	err = c.Superstep("baseline/ag-local-radius", func(mc *mpc.Machine) error {
		r := metric.Radius(in.Space, in.Parts[mc.ID()], cs.MachineSets[mc.ID()])
		mc.SendCentral(mpc.Float(r))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var bound float64
	err = c.Superstep("baseline/ag-certify", func(mc *mpc.Machine) error {
		if !mc.IsCentral() {
			return nil
		}
		maxLocal := 0.0
		for _, r := range mpc.CollectFloats(mc.Inbox()) {
			if r > maxLocal {
				maxLocal = r
			}
		}
		bound = metric.Radius(in.Space, cs.Union, cs.Central) + maxLocal
		return nil
	})
	if err != nil {
		return nil, err
	}
	radius, err := coreset.BroadcastRadius(c, in, cs.Central)
	if err != nil {
		return nil, err
	}
	return &AGKCenterResult{Centers: cs.Central, IDs: cs.CentralIDs, Radius: radius, Bound: bound}, nil
}

// DiversityResult is a baseline diversity solution.
type DiversityResult struct {
	Points    []metric.Point
	IDs       []int
	Diversity float64
}

// IndykDiversity runs the two-round composable-coreset diversity
// algorithm of Indyk et al.: GMM per machine yields a 3-composable
// coreset, and GMM over the union yields a 6-approximate k-diverse
// subset.
func IndykDiversity(c *mpc.Cluster, in *instance.Instance, k int) (*DiversityResult, error) {
	cs, err := coreset.Collect(c, in, k)
	if err != nil {
		return nil, err
	}
	return &DiversityResult{
		Points:    cs.Central,
		IDs:       cs.CentralIDs,
		Diversity: metric.Diversity(in.Space, cs.Central),
	}, nil
}

// RandomSubset selects k points uniformly at random: every machine ships
// min(k, |V_i|) random local points to the central machine, which picks k
// uniformly from the union. A strawman lower bar for both objectives.
func RandomSubset(c *mpc.Cluster, in *instance.Instance, k int) ([]metric.Point, []int, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("baselines: k = %d, need k >= 1", k)
	}
	if c.NumMachines() != in.Machines() {
		return nil, nil, fmt.Errorf("baselines: cluster/instance machine counts disagree")
	}
	err := c.Superstep("baseline/random-ship", func(mc *mpc.Machine) error {
		i := mc.ID()
		n := len(in.Parts[i])
		take := k
		if take > n {
			take = n
		}
		var pts []metric.Point
		var ids []int
		for _, j := range mc.RNG.Sample(n, take) {
			pts = append(pts, in.Parts[i][j])
			ids = append(ids, in.IDs[i][j])
		}
		mc.SendCentral(mpc.IndexedPoints{IDs: ids, Pts: pts})
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var outP []metric.Point
	var outI []int
	err = c.Superstep("baseline/random-pick", func(mc *mpc.Machine) error {
		if !mc.IsCentral() {
			return nil
		}
		ids, pts := mpc.CollectIndexed(mc.Inbox())
		take := k
		if take > len(pts) {
			take = len(pts)
		}
		for _, j := range mc.RNG.Sample(len(pts), take) {
			outP = append(outP, pts[j])
			outI = append(outI, ids[j])
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return outP, outI, nil
}
