package baselines

import (
	"testing"

	"parclust/internal/instance"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/seq"
	"parclust/internal/workload"
)

func makeInstance(pts []metric.Point, m int) *instance.Instance {
	return instance.New(metric.L2{}, workload.PartitionRoundRobin(nil, pts, m))
}

func TestMalkomesFourApprox(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		pts := workload.UniformCube(r, 12, 2, 100)
		in := makeInstance(pts, 3)
		c := mpc.NewCluster(3, uint64(trial))
		res, err := MalkomesKCenter(c, in, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Centers) != 3 {
			t.Fatalf("center count %d", len(res.Centers))
		}
		opt, _ := seq.ExactKCenter(metric.L2{}, pts, 3)
		if res.Radius > 4*opt+1e-9 {
			t.Fatalf("trial %d: Malkomes radius %v > 4·opt %v", trial, res.Radius, opt)
		}
	}
}

func TestMalkomesTwoRoundsPlusRadius(t *testing.T) {
	r := rng.New(2)
	pts := workload.UniformCube(r, 100, 2, 50)
	in := makeInstance(pts, 4)
	c := mpc.NewCluster(4, 5)
	if _, err := MalkomesKCenter(c, in, 4); err != nil {
		t.Fatal(err)
	}
	// 2 coreset rounds + 3 radius-measurement rounds.
	if got := c.Stats().Rounds; got != 5 {
		t.Fatalf("rounds = %d, want 5", got)
	}
}

func TestIndykSixApprox(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 20; trial++ {
		pts := workload.UniformCube(r, 12, 2, 100)
		in := makeInstance(pts, 3)
		c := mpc.NewCluster(3, uint64(trial))
		res, err := IndykDiversity(c, in, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Points) != 4 {
			t.Fatalf("selection size %d", len(res.Points))
		}
		opt, _ := seq.ExactDiversity(metric.L2{}, pts, 4)
		if res.Diversity < opt/6-1e-9 {
			t.Fatalf("trial %d: Indyk diversity %v < opt/6 %v", trial, res.Diversity, opt/6)
		}
	}
}

func TestRandomSubset(t *testing.T) {
	r := rng.New(4)
	pts := workload.UniformCube(r, 100, 2, 50)
	in := makeInstance(pts, 4)
	c := mpc.NewCluster(4, 7)
	sel, ids, err := RandomSubset(c, in, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 6 || len(ids) != 6 {
		t.Fatalf("selection size %d", len(sel))
	}
	seen := map[int]bool{}
	for i, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
		if p := in.PointByID(id); p == nil || !p.Equal(sel[i]) {
			t.Fatalf("id %d does not match point", id)
		}
	}
}

func TestRandomSubsetSmallInput(t *testing.T) {
	in := makeInstance(workload.Line(3), 2)
	c := mpc.NewCluster(2, 1)
	sel, _, err := RandomSubset(c, in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("k>n selection size %d, want 3", len(sel))
	}
}

func TestRandomSubsetRejects(t *testing.T) {
	in := makeInstance(workload.Line(3), 2)
	if _, _, err := RandomSubset(mpc.NewCluster(2, 1), in, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := RandomSubset(mpc.NewCluster(3, 1), in, 2); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestAghamolaeiGhodsiCertifiedBound(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 20; trial++ {
		pts := workload.UniformCube(r, 40, 2, 100)
		in := makeInstance(pts, 4)
		c := mpc.NewCluster(4, uint64(trial))
		res, err := AghamolaeiGhodsiKCenter(c, in, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Centers) != 3 {
			t.Fatalf("center count %d", len(res.Centers))
		}
		// The certificate is computed from shipped words only, yet must
		// dominate the measured radius over the full point set.
		if res.Radius > res.Bound+1e-9 {
			t.Fatalf("trial %d: measured radius %v > certified bound %v", trial, res.Radius, res.Bound)
		}
		opt, _ := seq.ExactKCenter(metric.L2{}, pts, 3)
		if res.Radius > 4*opt+1e-9 {
			t.Fatalf("trial %d: AG radius %v > 4·opt %v", trial, res.Radius, opt)
		}
	}
}
