package main

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"parclust/internal/rng"
	"parclust/internal/serve"
	"parclust/internal/workload"
)

// serveOutput is serve mode's JSON report. Every float is finite:
// non-finite objective values (a k-diverse subset of < 2 points has
// diversity +Inf) are reported through their *_finite flag instead of
// breaking encoding/json.
type serveOutput struct {
	Mode    string  `json:"mode"`
	N       int     `json:"n"`
	K       int     `json:"k"`
	Shards  int     `json:"shards"`
	Ops     int64   `json:"ops"`
	Queries int64   `json:"queries"`
	Seconds float64 `json:"mixed_seconds"`
	QPS     float64 `json:"qps"`
	// Freshness and solver counters at the end of the run.
	Solves          uint64  `json:"solves"`
	Rebuilds        int     `json:"sketch_rebuilds"`
	Live            int     `json:"live_points"`
	CoresetSize     int     `json:"coreset_size"`
	RadiusBound     float64 `json:"radius_bound"`
	Seq             uint64  `json:"solution_seq"`
	OpsBehind       int64   `json:"ops_behind"`
	Diversity       float64 `json:"diversity,omitempty"`
	DiversityFinite bool    `json:"diversity_finite,omitempty"`
}

// runServe drives the in-process serving session: preload -n points,
// solve once, then stream -ops mutations (insert fraction -write-frac)
// while -readers goroutines query continuously, and report sustained
// QPS plus the final solution's freshness metadata.
func runServe(fl *cliFlags, stdout io.Writer) error {
	space, err := spaceByName(fl.metricID)
	if err != nil {
		return err
	}
	r := rng.New(fl.seed)
	pts := workload.GaussianMixture(r, fl.n, 2, fl.k, 20, 1)
	svc := serve.New(serve.Config{
		Space: space, K: fl.k, Eps: fl.eps, Shards: fl.m,
		StalenessOps: fl.staleness, Window: fl.window,
		Seed: fl.seed, Deadline: fl.deadline, Diversity: fl.diverse,
	})
	defer svc.Close()

	for i, p := range pts {
		svc.Insert(i, p)
	}
	svc.Resolve()
	if err := svc.Err(); err != nil {
		return err
	}

	var queries atomic.Int64
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < fl.readers; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				svc.Assign(pts[i%len(pts)])
				queries.Add(1)
				i += 13
			}
		}(g)
	}

	start := time.Now()
	next := fl.n
	for i := 0; i < fl.ops; i++ {
		if r.Float64() < fl.writeFrac {
			svc.Insert(next, pts[next%len(pts)])
			next++
		} else {
			svc.Delete(r.Intn(next))
		}
	}
	// Small -ops streams can finish before the readers are even
	// scheduled; hold the measurement window open long enough for a
	// meaningful sustained-QPS figure.
	if min := 250 * time.Millisecond; time.Since(start) < min {
		time.Sleep(min - time.Since(start))
	}
	elapsed := time.Since(start)
	close(stop)
	readers.Wait()
	svc.Close()
	if err := svc.Err(); err != nil {
		return err
	}

	sol, st := svc.Solution()
	stats := svc.Stats()
	out := serveOutput{
		Mode: "serve", N: fl.n, K: fl.k, Shards: fl.m,
		Ops: stats.Ops, Queries: queries.Load(),
		Seconds: elapsed.Seconds(),
		Solves:  stats.Solves, Rebuilds: stats.Rebuilds, Live: stats.Live,
		Seq: st.Seq, OpsBehind: st.OpsBehind,
	}
	if elapsed > 0 {
		out.QPS = float64(out.Queries) / elapsed.Seconds()
	}
	if sol != nil {
		out.CoresetSize = sol.CoresetSize
		out.RadiusBound = sol.RadiusBound
		if fl.diverse && !math.IsInf(sol.Diversity, 0) && !math.IsNaN(sol.Diversity) {
			out.Diversity, out.DiversityFinite = sol.Diversity, true
		}
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
