package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name string
		args []string
		ok   bool
	}{
		{"worker", []string{"-listen", "127.0.0.1:0"}, true},
		{"coordinator", []string{"-run", "kcenter", "-workers", "a:1,b:2"}, true},
		{"no mode", nil, false},
		{"both modes", []string{"-listen", ":1", "-run", "kcenter", "-workers", "a:1"}, false},
		{"unknown algo", []string{"-run", "kmeans", "-workers", "a:1"}, false},
		{"no workers", []string{"-run", "kcenter"}, false},
		{"bad metric", []string{"-run", "kcenter", "-workers", "a:1", "-metric", "cosine"}, false},
		{"bad sizes", []string{"-run", "kcenter", "-workers", "a:1", "-m", "0"}, false},
		{"negative frame cap", []string{"-listen", ":1", "-max-frame", "-1"}, false},
		{"spmd coordinator", []string{"-run", "kcenter", "-workers", "a:1", "-spmd"}, true},
		{"spmd on worker", []string{"-listen", ":1", "-spmd"}, false},
		{"serve", []string{"-serve"}, true},
		{"serve full", []string{"-serve", "-n", "500", "-m", "3", "-k", "4", "-ops", "100", "-readers", "2", "-write-frac", "0.7", "-staleness", "32", "-window", "100", "-deadline", "50ms", "-diverse"}, true},
		{"serve plus coordinator", []string{"-serve", "-run", "kcenter", "-workers", "a:1"}, false},
		{"serve plus worker", []string{"-serve", "-listen", ":1"}, false},
		{"serve with workers", []string{"-serve", "-workers", "a:1"}, false},
		{"serve with spmd", []string{"-serve", "-spmd"}, false},
		{"serve bad write-frac", []string{"-serve", "-write-frac", "1.5"}, false},
		{"serve bad readers", []string{"-serve", "-readers", "0"}, false},
		{"serve bad staleness", []string{"-serve", "-staleness", "0"}, false},
		{"serve bad metric", []string{"-serve", "-metric", "cosine"}, false},
	}
	for _, tc := range cases {
		fs, fl := newFlagSet()
		if err := fs.Parse(tc.args); err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if err := validateFlags(fl); (err == nil) != tc.ok {
			t.Errorf("%s: validateFlags = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// TestHelperWorker is not a test: it is the worker process body for
// TestTwoProcessParity, re-invoked via the test binary.
func TestHelperWorker(t *testing.T) {
	if os.Getenv("KCLUSTERD_WORKER_HELPER") != "1" {
		t.Skip("helper process body, not a test")
	}
	run([]string{
		"-listen", "127.0.0.1:0",
		"-ready-file", os.Getenv("KCLUSTERD_READY_FILE"),
	}, io.Discard, io.Discard)
	os.Exit(0)
}

// startWorkerProcess spawns this test binary as a real kclusterd worker
// OS process and returns the address it bound. The process is killed on
// test cleanup.
func startWorkerProcess(t *testing.T) string {
	t.Helper()
	readyFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperWorker")
	cmd.Env = append(os.Environ(),
		"KCLUSTERD_WORKER_HELPER=1",
		"KCLUSTERD_READY_FILE="+readyFile,
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if addr, err := os.ReadFile(readyFile); err == nil && len(addr) > 0 {
			return string(addr)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("worker process never wrote its ready file")
	return ""
}

// TestTwoProcessParity is the walkthrough from docs/TRANSPORT.md as a
// test: a worker in its own OS process, a coordinator in this one, and
// -check asserting the tcp run matches the in-process rerun exactly.
func TestTwoProcessParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns an OS process")
	}
	addr := startWorkerProcess(t)
	addr2 := startWorkerProcess(t)

	for _, algo := range []string{"kcenter", "diversity", "ksupplier"} {
		var stdout, stderr bytes.Buffer
		code := run([]string{
			"-run", algo,
			"-workers", addr + "," + addr2,
			"-n", "200", "-m", "4", "-k", "4",
			"-check",
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("%s: exit %d, stderr: %s", algo, code, stderr.String())
		}
		var out output
		if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
			t.Fatalf("%s: bad JSON: %v\n%s", algo, err, stdout.String())
		}
		if out.Check == "" {
			t.Fatalf("%s: -check produced no verdict: %s", algo, stdout.String())
		}
		if out.Transport.Exchanges == 0 || out.Transport.WordsOnWire == 0 {
			t.Fatalf("%s: no traffic crossed the wire: %+v", algo, out.Transport)
		}
		if out.Workers != 2 {
			t.Fatalf("%s: %d workers reported, want 2", algo, out.Workers)
		}
	}
}

// TestTwoProcessSPMDParity is the SPMD half of the two-process
// contract: with -spmd the registered supersteps execute inside the
// worker OS processes (machine state resident there, the coordinator
// link carrying only control frames, shards moving over the
// worker-to-worker peer mesh), and -check still proves the result
// byte-identical to the in-process rerun. CI runs this leg at
// GOMAXPROCS=1 and GOMAXPROCS=4 (see .github/workflows/ci.yml).
func TestTwoProcessSPMDParity(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes")
	}
	addr := startWorkerProcess(t)
	addr2 := startWorkerProcess(t)

	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-run", "kcenter",
		"-workers", addr + "," + addr2,
		"-n", "200", "-m", "4", "-k", "4",
		"-spmd", "-check",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var out output
	if err := json.Unmarshal(stdout.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout.String())
	}
	if out.Check == "" {
		t.Fatalf("-check produced no verdict: %s", stdout.String())
	}
	if out.Transport.Exchanges == 0 {
		t.Fatalf("no exchanges crossed the wire: %+v", out.Transport)
	}
}

// TestCoordinatorRejectsDeadWorker pins the error path: a fleet address
// nobody listens on fails the run with a nonzero exit.
func TestCoordinatorRejectsDeadWorker(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-run", "kcenter", "-workers", "127.0.0.1:1",
		"-n", "50", "-m", "2", "-k", "2",
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatalf("coordinator succeeded against a dead worker: %s", stdout.String())
	}
}

// TestServeModeReport runs serve mode end-to-end in-process and checks
// the JSON report is well-formed and internally consistent.
func TestServeModeReport(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{
		"-serve", "-n", "300", "-m", "3", "-k", "4",
		"-ops", "200", "-readers", "2", "-staleness", "32", "-seed", "7", "-diverse",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var rep struct {
		Mode    string  `json:"mode"`
		Ops     int64   `json:"ops"`
		Queries int64   `json:"queries"`
		QPS     float64 `json:"qps"`
		Solves  uint64  `json:"solves"`
		Seq     uint64  `json:"solution_seq"`
		Bound   float64 `json:"radius_bound"`
	}
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report does not parse: %v\n%s", err, out.String())
	}
	// Ops = 300 preload inserts plus however many of the 200 streamed
	// mutations landed (deletes of already-deleted ids are no-ops).
	if rep.Mode != "serve" || rep.Ops < 300 || rep.Ops > 500 || rep.Solves == 0 || rep.Seq == 0 {
		t.Fatalf("report %+v inconsistent", rep)
	}
	if rep.Queries == 0 || rep.QPS <= 0 {
		t.Fatalf("report %+v recorded no query throughput", rep)
	}
	if rep.Bound <= 0 {
		t.Fatalf("radius bound %v not positive", rep.Bound)
	}
}
