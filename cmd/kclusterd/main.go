// Command kclusterd is the multi-process face of the simulator: the
// same binary runs as a transport worker or as a coordinator, so a
// single `go build ./cmd/kclusterd` is everything a distributed run
// needs (docs/TRANSPORT.md walks through a two-process session).
//
// Worker mode serves machine-group mailboxes to coordinators over TCP
// (internal/transport wire format) and keeps no state between rounds:
//
//	kclusterd -listen 127.0.0.1:9001
//	kclusterd -listen 127.0.0.1:9002 -verbose
//
// Coordinator mode runs one of the paper's algorithms on a generated
// instance with message delivery sharded over the worker fleet, and
// prints the solution plus transport counters as JSON:
//
//	kclusterd -run kcenter -workers 127.0.0.1:9001,127.0.0.1:9002 -n 400 -m 4 -k 6
//	kclusterd -run diversity -workers 127.0.0.1:9001 -n 400 -m 4 -k 6 -metric l1
//	kclusterd -run ksupplier -workers 127.0.0.1:9001,127.0.0.1:9002 -n 400 -m 4 -k 6 -check
//	kclusterd -run kcenter -workers 127.0.0.1:9001,127.0.0.1:9002 -n 400 -m 4 -k 6 -spmd -check
//
// With -check the coordinator reruns the identical configuration on the
// in-process backend and fails unless results match exactly — the
// single-command form of the transport-parity contract.
//
// Serve mode runs the long-lived clustering service (internal/serve,
// docs/SERVING.md) in-process over a generated workload — preload,
// then concurrent readers querying while mutations stream and async
// re-solves trigger on staleness — and prints the sustained QPS and
// freshness counters as JSON:
//
//	kclusterd -serve -n 2000 -m 4 -k 6 -ops 2000 -readers 4
//	kclusterd -serve -n 2000 -m 4 -k 6 -window 500 -staleness 32 -diverse
//	kclusterd -serve -n 1000 -m 2 -k 4 -deadline 50ms -write-frac 0.7 -seed 9
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"reflect"
	"strings"
	"time"

	"parclust/internal/diversity"
	"parclust/internal/instance"
	"parclust/internal/kcenter"
	"parclust/internal/ksupplier"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/transport"
	"parclust/internal/workload"
)

// cliFlags carries every kclusterd flag. The set is constructed by
// newFlagSet so tests (and the documented-flags audit) can parse
// command lines without touching global state.
type cliFlags struct {
	// worker mode
	listen    string
	readyFile string
	verbose   bool
	maxFrame  int
	// coordinator mode
	run      string
	workers  string
	n        int
	m        int
	k        int
	eps      float64
	seed     uint64
	metricID string
	check    bool
	spmd     bool
	// serve mode
	serve     bool
	ops       int
	readers   int
	writeFrac float64
	staleness int
	window    int
	deadline  time.Duration
	diverse   bool
}

// newFlagSet builds the kclusterd flag set bound to a fresh cliFlags.
func newFlagSet() (*flag.FlagSet, *cliFlags) {
	fl := &cliFlags{}
	fs := flag.NewFlagSet("kclusterd", flag.ContinueOnError)
	fs.StringVar(&fl.listen, "listen", "", "worker mode: serve the transport protocol on this address (e.g. 127.0.0.1:9001)")
	fs.StringVar(&fl.readyFile, "ready-file", "", "worker mode: write the bound address to this file once listening (use with -listen host:0)")
	fs.BoolVar(&fl.verbose, "verbose", false, "worker mode: log each session open/close/error to stderr")
	fs.IntVar(&fl.maxFrame, "max-frame", 0, "frame body cap in bytes for either mode; 0 uses the 64MiB default")
	fs.StringVar(&fl.run, "run", "", "coordinator mode: algorithm to run — kcenter | diversity | ksupplier")
	fs.StringVar(&fl.workers, "workers", "", "coordinator mode: comma-separated worker addresses, in machine-group order")
	fs.IntVar(&fl.n, "n", 400, "coordinator mode: generated instance size")
	fs.IntVar(&fl.m, "m", 4, "coordinator mode: simulated machines")
	fs.IntVar(&fl.k, "k", 6, "coordinator mode: solution size")
	fs.Float64Var(&fl.eps, "eps", 0.1, "coordinator mode: ladder resolution ε")
	fs.Uint64Var(&fl.seed, "seed", 1, "coordinator mode: random seed; identical seeds reproduce runs exactly on every backend")
	fs.StringVar(&fl.metricID, "metric", "l2", "coordinator mode: l2 | l1 | linf | angular | hamming")
	fs.BoolVar(&fl.check, "check", false, "coordinator mode: rerun on the in-process backend and fail unless results match exactly")
	fs.BoolVar(&fl.spmd, "spmd", false, "coordinator mode: execute registered supersteps inside the workers holding their machine partitions (SPMD sessions); the coordinator link carries only control messages and results are unchanged")
	fs.BoolVar(&fl.serve, "serve", false, "serve mode: run the long-lived clustering service (internal/serve) over a generated workload and report sustained mixed-load QPS as JSON")
	fs.IntVar(&fl.ops, "ops", 2000, "serve mode: mutations to stream after the preload (inserts and deletes, mixed by -write-frac)")
	fs.IntVar(&fl.readers, "readers", 4, "serve mode: concurrent query goroutines")
	fs.Float64Var(&fl.writeFrac, "write-frac", 0.5, "serve mode: fraction of streamed mutations that are inserts (the rest delete)")
	fs.IntVar(&fl.staleness, "staleness", 64, "serve mode: mutations the cached solution may fall behind before an async re-solve triggers")
	fs.IntVar(&fl.window, "window", 0, "serve mode: sliding window size; 0 keeps points until deleted")
	fs.DurationVar(&fl.deadline, "deadline", 100*time.Millisecond, "serve mode: per-re-solve deadline for scheduler pool bidding; 0 disables bidding")
	fs.BoolVar(&fl.diverse, "diverse", false, "serve mode: also maintain and report a k-diverse subset per solve")
	return fs, fl
}

// validateFlags rejects inconsistent flag combinations before any
// network or algorithm work: exactly one mode must be selected, the
// coordinator needs a worker fleet and a known algorithm/metric, and
// sizes must be positive.
func validateFlags(fl *cliFlags) error {
	worker := fl.listen != ""
	coord := fl.run != ""
	modes := 0
	for _, on := range []bool{worker, coord, fl.serve} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("exactly one of -listen (worker), -run (coordinator) or -serve is required")
	}
	if fl.maxFrame < 0 {
		return fmt.Errorf("-max-frame %d: must be >= 0", fl.maxFrame)
	}
	if worker {
		if fl.spmd {
			return fmt.Errorf("-spmd is a coordinator flag (workers serve SPMD sessions unconditionally)")
		}
		return nil
	}
	if fl.serve {
		if fl.spmd || fl.check || fl.workers != "" {
			return fmt.Errorf("-spmd, -check and -workers are coordinator flags; serve mode runs in-process")
		}
		if fl.n < 1 || fl.m < 1 || fl.k < 1 {
			return fmt.Errorf("-n, -m and -k must be positive (got %d, %d, %d)", fl.n, fl.m, fl.k)
		}
		if fl.ops < 0 || fl.readers < 1 {
			return fmt.Errorf("-ops must be >= 0 and -readers >= 1 (got %d, %d)", fl.ops, fl.readers)
		}
		if fl.writeFrac < 0 || fl.writeFrac > 1 {
			return fmt.Errorf("-write-frac %v: must be in [0, 1]", fl.writeFrac)
		}
		if fl.staleness < 1 || fl.window < 0 || fl.deadline < 0 {
			return fmt.Errorf("-staleness must be >= 1, -window and -deadline >= 0")
		}
		if _, err := spaceByName(fl.metricID); err != nil {
			return err
		}
		return nil
	}
	switch fl.run {
	case "kcenter", "diversity", "ksupplier":
	default:
		return fmt.Errorf("-run %q: want kcenter, diversity or ksupplier", fl.run)
	}
	if fl.workers == "" {
		return fmt.Errorf("-run requires -workers (comma-separated addresses)")
	}
	if fl.n < 1 || fl.m < 1 || fl.k < 1 {
		return fmt.Errorf("-n, -m and -k must be positive (got %d, %d, %d)", fl.n, fl.m, fl.k)
	}
	if _, err := spaceByName(fl.metricID); err != nil {
		return err
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable argv and streams, so the two-process test
// can drive both modes.
func run(args []string, stdout, stderr io.Writer) int {
	fs, fl := newFlagSet()
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := validateFlags(fl); err != nil {
		fmt.Fprintln(stderr, "kclusterd:", err)
		return 2
	}
	var err error
	switch {
	case fl.listen != "":
		err = runWorker(fl, stderr)
	case fl.serve:
		err = runServe(fl, stdout)
	default:
		err = runCoordinator(fl, stdout)
	}
	if err != nil {
		fmt.Fprintln(stderr, "kclusterd:", err)
		return 1
	}
	return 0
}

// runWorker serves the transport protocol until the process is killed.
func runWorker(fl *cliFlags, stderr io.Writer) error {
	ln, err := net.Listen("tcp", fl.listen)
	if err != nil {
		return err
	}
	cfg := transport.ServerConfig{MaxFrameBytes: uint32(fl.maxFrame)}
	if fl.verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "kclusterd: "+format+"\n", args...)
		}
	}
	if fl.readyFile != "" {
		if err := os.WriteFile(fl.readyFile, []byte(ln.Addr().String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "kclusterd: worker listening on %s\n", ln.Addr())
	return transport.NewServer(cfg).Serve(ln)
}

// result is the part of a run the parity check compares: everything the
// algorithm decided, nothing the wall clock touched.
type result struct {
	Objective float64     `json:"objective"`
	Bound     float64     `json:"certified_bound,omitempty"`
	IDs       []int       `json:"ids"`
	Selected  [][]float64 `json:"selected"`
	Rounds    int         `json:"mpc_rounds"`
	MaxComm   int64       `json:"max_round_comm_words"`
}

// output is the coordinator's JSON report.
type output struct {
	Algo     string `json:"algo"`
	N        int    `json:"n"`
	K        int    `json:"k"`
	Machines int    `json:"machines"`
	Workers  int    `json:"workers"`
	result
	Transport transport.ClientStats `json:"transport"`
	Check     string                `json:"check,omitempty"`
}

// runCoordinator dials the fleet, solves over it, optionally replays the
// run in-process to verify parity, and prints the JSON report.
func runCoordinator(fl *cliFlags, stdout io.Writer) error {
	addrs := strings.Split(fl.workers, ",")
	client, err := transport.Dial(transport.DialConfig{
		Workers:       addrs,
		Machines:      fl.m,
		MaxFrameBytes: uint32(fl.maxFrame),
	})
	if err != nil {
		return err
	}
	defer client.Close()

	res, err := solve(fl, client)
	if err != nil {
		return err
	}
	out := output{
		Algo: fl.run, N: fl.n, K: fl.k, Machines: fl.m, Workers: len(addrs),
		result: res, Transport: client.Stats(),
	}
	if fl.check {
		ref, err := solve(fl, nil)
		if err != nil {
			return fmt.Errorf("in-process reference run: %w", err)
		}
		if !reflect.DeepEqual(res, ref) {
			return fmt.Errorf("parity check FAILED: tcp run %+v, in-process run %+v", res, ref)
		}
		out.Check = "ok: tcp and inproc runs identical"
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// solve runs the configured algorithm once over the given transport
// (nil means the in-process default) and returns the comparable result.
func solve(fl *cliFlags, t mpc.Transport) (result, error) {
	space, err := spaceByName(fl.metricID)
	if err != nil {
		return result{}, err
	}
	r := rng.New(fl.seed)
	pts := workload.GaussianMixture(r, fl.n, 2, fl.k, 20, 1)
	in := instance.New(space, workload.PartitionRandom(r, pts, fl.m))

	var opts []mpc.Option
	if t != nil {
		opts = append(opts, mpc.WithTransport(t))
		if fl.spmd {
			opts = append(opts, mpc.WithSPMD())
		}
	}
	c := mpc.NewCluster(fl.m, fl.seed, opts...)

	var res result
	switch fl.run {
	case "kcenter":
		kc, err := kcenter.Solve(c, in, kcenter.Config{K: fl.k, Eps: fl.eps})
		if err != nil {
			return result{}, err
		}
		res = result{Objective: kc.Radius, Bound: kc.RadiusBound, IDs: kc.IDs, Selected: toRaw(kc.Centers)}
	case "diversity":
		dv, err := diversity.Maximize(c, in, diversity.Config{K: fl.k, Eps: fl.eps})
		if err != nil {
			return result{}, err
		}
		res = result{Objective: dv.Diversity, IDs: dv.IDs, Selected: toRaw(dv.Points)}
	case "ksupplier":
		sup := workload.GaussianMixture(r, fl.n/4, 2, fl.k, 20, 1)
		inS := instance.New(space, workload.PartitionRandom(r, sup, fl.m))
		ks, err := ksupplier.Solve(c, in, inS, ksupplier.Config{K: fl.k, Eps: fl.eps})
		if err != nil {
			return result{}, err
		}
		res = result{Objective: ks.Radius, Bound: ks.RadiusBound, IDs: ks.IDs, Selected: toRaw(ks.Suppliers)}
	}
	st := c.Stats()
	res.Rounds = st.Rounds
	res.MaxComm = st.MaxRoundComm()
	return res, nil
}

func spaceByName(name string) (metric.Space, error) {
	switch name {
	case "l2":
		return metric.L2{}, nil
	case "l1":
		return metric.L1{}, nil
	case "linf":
		return metric.LInf{}, nil
	case "angular":
		return metric.Angular{}, nil
	case "hamming":
		return metric.Hamming{}, nil
	}
	return nil, fmt.Errorf("unknown metric %q", name)
}

func toRaw(pts []metric.Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}
