package main

// The documented-flags audit: every kclusterd command line shown in the
// repo's markdown must parse against the real flag set and pass
// validateFlags, so README/docs/examples invocations cannot rot when
// flags are renamed (internal/docscan finds the lines).

import (
	"fmt"
	"io"
	"testing"

	"parclust/internal/docscan"
)

func TestDocumentedFlagsParse(t *testing.T) {
	cmds, err := docscan.Commands("../..", "kclusterd")
	if err != nil {
		t.Fatal(err)
	}
	if len(cmds) == 0 {
		t.Fatal("no documented kclusterd invocations found; scanner regression?")
	}
	for i, c := range cmds {
		t.Run(fmt.Sprintf("%02d_%s_%d", i, c.File, c.Line), func(t *testing.T) {
			fs, fl := newFlagSet()
			fs.SetOutput(io.Discard)
			if err := fs.Parse(c.Args); err != nil {
				t.Fatalf("documented command does not parse: %s\n  %v", c, err)
			}
			if err := validateFlags(fl); err != nil {
				t.Fatalf("documented command fails validation: %s\n  %v", c, err)
			}
		})
	}
}
