// Command datagen emits synthetic datasets from the workload families
// used by the benchmark harness, in CSV or JSON, for use with kcluster or
// external tooling.
//
// Usage:
//
//	datagen -family gauss-sep -n 10000 -out points.csv
//	datagen -family uniform   -n 500  -out -            # CSV to stdout
//	datagen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"parclust/internal/dataio"
	"parclust/internal/rng"
	"parclust/internal/workload"
)

func main() {
	var (
		family = flag.String("family", "uniform", "workload family name")
		n      = flag.Int("n", 1000, "number of points")
		seed   = flag.Uint64("seed", 1, "random seed")
		out    = flag.String("out", "-", "output path (.json for JSON, else CSV; '-' for stdout)")
		list   = flag.Bool("list", false, "list families and exit")
	)
	flag.Parse()

	fams := workload.Families()
	if *list {
		for _, f := range fams {
			fmt.Println(f.Name)
		}
		return
	}
	for _, f := range fams {
		if f.Name == *family {
			pts := f.Gen(rng.New(*seed), *n)
			if err := dataio.WriteFile(*out, pts); err != nil {
				fmt.Fprintln(os.Stderr, "datagen:", err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "datagen: unknown family %q (use -list)\n", *family)
	os.Exit(2)
}
