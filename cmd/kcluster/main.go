// Command kcluster is the end-user CLI: it loads a point set from a CSV
// or JSON file (see internal/dataio for the formats), runs one
// of the paper's MPC algorithms on a simulated cluster, and prints the
// solution as JSON.
//
// Usage:
//
//	kcluster -algo kcenter   -k 10 -m 8 -input points.csv
//	kcluster -algo diversity -k 10 -m 8 -input points.csv -metric angular
//	kcluster -algo ksupplier -k 5  -m 4 -input customers.csv -suppliers sites.csv
//	kcluster -algo outliers  -k 10 -z 20 -m 8 -input noisy.csv
//	kcluster -algo remoteclique -k 10 -m 8 -input points.csv
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"parclust/internal/dataio"
	"parclust/internal/diversity"
	"parclust/internal/instance"
	"parclust/internal/kcenter"
	"parclust/internal/kdtree"
	"parclust/internal/ksupplier"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/outliers"
	"parclust/internal/remoteclique"
	"parclust/internal/rng"
	"parclust/internal/workload"
)

type output struct {
	Algo      string         `json:"algo"`
	Assign    []int          `json:"assignments,omitempty"`
	K         int            `json:"k"`
	Machines  int            `json:"machines"`
	N         int            `json:"n"`
	Selected  [][]float64    `json:"selected"`
	IDs       []int          `json:"ids"`
	Objective float64        `json:"objective"`
	Bound     float64        `json:"certified_bound,omitempty"`
	Rounds    int            `json:"mpc_rounds"`
	MaxComm   int64          `json:"max_round_comm_words"`
	Extra     map[string]any `json:"extra,omitempty"`
}

// cliFlags carries every kcluster flag. The set is constructed by
// newFlagSet so tests (and the documented-flags audit) can parse
// command lines without touching global state.
type cliFlags struct {
	algo     string
	k        int
	z        int
	m        int
	eps      float64
	input    string
	supFile  string
	metricID string
	seed     uint64
	trace    bool
	assign   bool
	verify   bool
}

// newFlagSet builds the kcluster flag set bound to a fresh cliFlags.
func newFlagSet() (*flag.FlagSet, *cliFlags) {
	fl := &cliFlags{}
	fs := flag.NewFlagSet("kcluster", flag.ContinueOnError)
	fs.StringVar(&fl.algo, "algo", "kcenter", "kcenter | diversity | ksupplier | outliers | remoteclique")
	fs.IntVar(&fl.k, "k", 5, "solution size")
	fs.IntVar(&fl.z, "z", 0, "permitted outliers (outliers algo only)")
	fs.IntVar(&fl.m, "m", 4, "simulated machines")
	fs.Float64Var(&fl.eps, "eps", 0.1, "ladder resolution ε")
	fs.StringVar(&fl.input, "input", "", "CSV of points (customers for ksupplier); '-' for stdin")
	fs.StringVar(&fl.supFile, "suppliers", "", "CSV of supplier points (ksupplier only)")
	fs.StringVar(&fl.metricID, "metric", "l2", "l2 | l1 | linf | angular | hamming")
	fs.Uint64Var(&fl.seed, "seed", 1, "random seed")
	fs.BoolVar(&fl.trace, "trace", false, "log every MPC round to stderr")
	fs.BoolVar(&fl.assign, "assign", false, "include per-point nearest-selected assignments in the output")
	fs.BoolVar(&fl.verify, "verify", false, "recompute the objective sequentially and fail on mismatch")
	return fs, fl
}

// validateFlags rejects unknown algorithm or metric names and
// non-positive sizes before any I/O.
func validateFlags(fl *cliFlags) error {
	switch fl.algo {
	case "kcenter", "diversity", "ksupplier", "outliers", "remoteclique":
	default:
		return fmt.Errorf("unknown -algo %q", fl.algo)
	}
	if fl.k < 1 || fl.m < 1 {
		return fmt.Errorf("-k and -m must be positive (got %d, %d)", fl.k, fl.m)
	}
	if fl.z < 0 {
		return fmt.Errorf("-z %d: must be >= 0", fl.z)
	}
	_, err := spaceByName(fl.metricID)
	return err
}

func main() {
	fs, fl := newFlagSet()
	fs.SetOutput(os.Stderr)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if err := validateFlags(fl); err != nil {
		fail(err)
	}
	var (
		algo     = &fl.algo
		k        = &fl.k
		z        = &fl.z
		m        = &fl.m
		eps      = &fl.eps
		input    = &fl.input
		supFile  = &fl.supFile
		metricID = &fl.metricID
		seed     = &fl.seed
		trace    = &fl.trace
		assign   = &fl.assign
		verify   = &fl.verify
	)

	space, err := spaceByName(*metricID)
	if err != nil {
		fail(err)
	}
	pts, err := dataio.ReadFile(*input)
	if err != nil {
		fail(fmt.Errorf("loading -input: %w", err))
	}
	r := rng.New(*seed)
	in := instance.New(space, workload.PartitionRandom(r, pts, *m))
	var opts []mpc.Option
	if *trace {
		opts = append(opts, mpc.WithTracer(func(round int, rs mpc.RoundStats) {
			fmt.Fprintf(os.Stderr, "round %3d %-28s maxSent=%-8d maxRecv=%-8d total=%d\n",
				round, rs.Name, rs.MaxSent, rs.MaxRecv, rs.TotalWords)
		}))
	}
	c := mpc.NewCluster(*m, *seed, opts...)

	out := output{Algo: *algo, K: *k, Machines: *m, N: len(pts)}
	switch *algo {
	case "kcenter":
		res, err := kcenter.Solve(c, in, kcenter.Config{K: *k, Eps: *eps})
		if err != nil {
			fail(err)
		}
		out.Selected, out.IDs = toRaw(res.Centers), res.IDs
		out.Objective, out.Bound = res.Radius, res.RadiusBound
		out.Extra = map[string]any{"r4": res.R4, "ladder_index": res.LadderIndex}
	case "diversity":
		res, err := diversity.Maximize(c, in, diversity.Config{K: *k, Eps: *eps})
		if err != nil {
			fail(err)
		}
		out.Selected, out.IDs = toRaw(res.Points), res.IDs
		out.Objective = res.Diversity
		out.Extra = map[string]any{"r4": res.R4, "ladder_index": res.LadderIndex}
	case "ksupplier":
		sup, err := dataio.ReadFile(*supFile)
		if err != nil {
			fail(fmt.Errorf("loading -suppliers: %w", err))
		}
		inS := instance.New(space, workload.PartitionRandom(r, sup, *m))
		res, err := ksupplier.Solve(c, in, inS, ksupplier.Config{K: *k, Eps: *eps})
		if err != nil {
			fail(err)
		}
		out.Selected, out.IDs = toRaw(res.Suppliers), res.IDs
		out.Objective, out.Bound = res.Radius, res.RadiusBound
		out.Extra = map[string]any{"r9": res.R9, "ladder_index": res.LadderIndex}
	case "outliers":
		res, err := outliers.MPC(c, in, *k, *z)
		if err != nil {
			fail(err)
		}
		out.Selected = toRaw(res.Centers)
		out.Objective = res.Radius
		out.Extra = map[string]any{"z": *z, "coreset_size": res.CoresetSize}
	case "remoteclique":
		res, err := remoteclique.MPCCoreset(c, in, *k)
		if err != nil {
			fail(err)
		}
		out.Selected, out.IDs = toRaw(res.Points), res.IDs
		out.Objective = res.Sum
	default:
		fail(fmt.Errorf("unknown -algo %q", *algo))
	}
	st := c.Stats()
	out.Rounds = st.Rounds
	out.MaxComm = st.MaxRoundComm()

	if *assign && len(out.Selected) > 0 {
		selected := make([]metric.Point, len(out.Selected))
		for i, raw := range out.Selected {
			selected[i] = metric.Point(raw)
		}
		out.Assign = make([]int, len(pts))
		if *metricID == "l2" {
			tree := kdtree.Build(selected)
			for i, p := range pts {
				out.Assign[i], _ = tree.Nearest(p)
			}
		} else {
			for i, p := range pts {
				out.Assign[i], _ = metric.Nearest(space, p, selected)
			}
		}
	}

	if *verify {
		selected := make([]metric.Point, len(out.Selected))
		for i, raw := range out.Selected {
			selected[i] = metric.Point(raw)
		}
		var recomputed float64
		switch *algo {
		case "kcenter", "ksupplier":
			recomputed = metric.Radius(space, pts, selected)
		case "diversity":
			recomputed = metric.Diversity(space, selected)
		case "outliers":
			recomputed = outliers.RadiusWithOutliers(space, pts, selected, *z)
		case "remoteclique":
			recomputed = remoteclique.SumDiversity(space, selected)
		}
		if math.Abs(recomputed-out.Objective) > 1e-9*(1+math.Abs(out.Objective)) {
			fail(fmt.Errorf("verification failed: reported objective %v, sequential recomputation %v",
				out.Objective, recomputed))
		}
		fmt.Fprintf(os.Stderr, "verified: objective %.6g matches sequential recomputation\n", out.Objective)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "kcluster:", err)
	os.Exit(1)
}

func spaceByName(name string) (metric.Space, error) {
	switch name {
	case "l2":
		return metric.L2{}, nil
	case "l1":
		return metric.L1{}, nil
	case "linf":
		return metric.LInf{}, nil
	case "angular":
		return metric.Angular{}, nil
	case "hamming":
		return metric.Hamming{}, nil
	}
	return nil, fmt.Errorf("unknown metric %q", name)
}

func toRaw(pts []metric.Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = p
	}
	return out
}
