package main

import (
	"testing"

	"parclust/internal/metric"
)

func TestSpaceByName(t *testing.T) {
	for _, name := range []string{"l2", "l1", "linf", "angular", "hamming"} {
		s, err := spaceByName(name)
		if err != nil || s.Name() != name {
			t.Fatalf("spaceByName(%q) = %v, %v", name, s, err)
		}
	}
	if _, err := spaceByName("nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestToRaw(t *testing.T) {
	raw := toRaw([]metric.Point{{1, 2}, {3}})
	if len(raw) != 2 || raw[0][1] != 2 || raw[1][0] != 3 {
		t.Fatalf("toRaw = %v", raw)
	}
}
