package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name        string
		speculation int
		faults      string
		budgets     bool
		transport   string
		workers     string
		wantErr     string // substring; empty means accept
	}{
		{"defaults", 0, "", false, "inproc", "", ""},
		{"sequential-width", 0, "", true, "inproc", "", ""},
		{"whole-ladder", -1, "", false, "inproc", "", ""},
		{"positive-width", 4, "", false, "inproc", "", ""},
		{"width-below-minus-one", -2, "", false, "inproc", "", "-speculation -2"},
		{"very-negative-width", -100, "", true, "inproc", "", "-speculation -100"},
		{"faults-with-budgets", 0, "crash:0.05,drop:0.02", true, "inproc", "", ""},
		{"all-kinds", 2, "crash:0.1,drop:0.1,duplicate:0.1,straggler:0.1,abort:0.1", true, "inproc", "", ""},
		{"faults-without-budgets", 0, "crash:0.05", false, "inproc", "", "-faults requires -budgets"},
		{"unknown-kind", 0, "meteor:0.1", true, "inproc", "", "-faults"},
		{"missing-rate", 0, "crash", true, "inproc", "", "-faults"},
		{"rate-above-one", 0, "crash:1.5", true, "inproc", "", "-faults"},
		{"negative-rate", 0, "crash:-0.1", true, "inproc", "", "-faults"},
		{"trailing-comma-tolerated", 0, "crash:0.1,", true, "inproc", "", ""},
		{"space-separated", 0, "crash:0.1 drop:0.1", true, "inproc", "", "-faults"},
		{"tcp-with-workers", 0, "", false, "tcp", "127.0.0.1:9001,127.0.0.1:9002", ""},
		{"tcp-without-workers", 0, "", false, "tcp", "", "-transport=tcp requires -workers"},
		{"workers-without-tcp", 0, "", false, "inproc", "127.0.0.1:9001", "-workers requires -transport=tcp"},
		{"unknown-transport", 0, "", false, "udp", "", "-transport"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fl := &cliFlags{
				spec: tc.speculation, faults: tc.faults, budgets: tc.budgets,
				transport: tc.transport, workers: tc.workers,
			}
			err := validateFlags(fl)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted %+v", fl)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
