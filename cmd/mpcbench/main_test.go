package main

import (
	"strings"
	"testing"

	"parclust/internal/sched"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name        string
		speculation string
		faults      string
		budgets     bool
		transport   string
		workers     string
		spmd        bool
		wantErr     string // substring; empty means accept
		wantWidth   int    // resolved specWidth when accepted
	}{
		{"defaults", "0", "", false, "inproc", "", false, "", 0},
		{"empty-defaults-to-sequential", "", "", false, "inproc", "", false, "", 0},
		{"sequential-width", "0", "", true, "inproc", "", false, "", 0},
		{"whole-ladder", "-1", "", false, "inproc", "", false, "", -1},
		{"positive-width", "4", "", false, "inproc", "", false, "", 4},
		{"adaptive", "adaptive", "", false, "inproc", "", false, "", sched.Adaptive},
		{"adaptive-with-budgets", "adaptive", "", true, "inproc", "", false, "", sched.Adaptive},
		{"width-below-minus-one", "-2", "", false, "inproc", "", false, "-speculation -2", 0},
		{"very-negative-width", "-100", "", true, "inproc", "", false, "-speculation -100", 0},
		{"garbage-width", "wide", "", false, "inproc", "", false, "-speculation \"wide\"", 0},
		{"adaptive-typo", "Adaptive", "", false, "inproc", "", false, "-speculation \"Adaptive\"", 0},
		{"faults-with-budgets", "0", "crash:0.05,drop:0.02", true, "inproc", "", false, "", 0},
		{"all-kinds", "2", "crash:0.1,drop:0.1,duplicate:0.1,straggler:0.1,abort:0.1", true, "inproc", "", false, "", 2},
		{"adaptive-with-faults", "adaptive", "crash:0.05", true, "inproc", "", false, "", sched.Adaptive},
		{"faults-without-budgets", "0", "crash:0.05", false, "inproc", "", false, "-faults requires -budgets", 0},
		{"unknown-kind", "0", "meteor:0.1", true, "inproc", "", false, "-faults", 0},
		{"missing-rate", "0", "crash", true, "inproc", "", false, "-faults", 0},
		{"rate-above-one", "0", "crash:1.5", true, "inproc", "", false, "-faults", 0},
		{"negative-rate", "0", "crash:-0.1", true, "inproc", "", false, "-faults", 0},
		{"trailing-comma-tolerated", "0", "crash:0.1,", true, "inproc", "", false, "", 0},
		{"space-separated", "0", "crash:0.1 drop:0.1", true, "inproc", "", false, "-faults", 0},
		{"tcp-with-workers", "0", "", false, "tcp", "127.0.0.1:9001,127.0.0.1:9002", false, "", 0},
		{"tcp-without-workers-spawns-fleet", "0", "", false, "tcp", "", false, "", 0},
		{"workers-without-tcp", "0", "", false, "inproc", "127.0.0.1:9001", false, "-workers requires -transport=tcp", 0},
		{"unknown-transport", "0", "", false, "udp", "", false, "-transport", 0},
		{"spmd-over-tcp", "0", "", true, "tcp", "", true, "", 0},
		{"spmd-over-tcp-with-workers", "0", "", true, "tcp", "127.0.0.1:9001", true, "", 0},
		{"spmd-without-tcp", "0", "", true, "inproc", "", true, "-spmd requires -transport=tcp", 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fl := &cliFlags{
				spec: tc.speculation, faults: tc.faults, budgets: tc.budgets,
				transport: tc.transport, workers: tc.workers, spmd: tc.spmd,
			}
			err := validateFlags(fl)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				if fl.specWidth != tc.wantWidth {
					t.Fatalf("specWidth = %d, want %d", fl.specWidth, tc.wantWidth)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted %+v", fl)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
