package main

import (
	"strings"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name        string
		speculation int
		faults      string
		budgets     bool
		wantErr     string // substring; empty means accept
	}{
		{"defaults", 0, "", false, ""},
		{"sequential-width", 0, "", true, ""},
		{"whole-ladder", -1, "", false, ""},
		{"positive-width", 4, "", false, ""},
		{"width-below-minus-one", -2, "", false, "-speculation -2"},
		{"very-negative-width", -100, "", true, "-speculation -100"},
		{"faults-with-budgets", 0, "crash:0.05,drop:0.02", true, ""},
		{"all-kinds", 2, "crash:0.1,drop:0.1,duplicate:0.1,straggler:0.1,abort:0.1", true, ""},
		{"faults-without-budgets", 0, "crash:0.05", false, "-faults requires -budgets"},
		{"unknown-kind", 0, "meteor:0.1", true, "-faults"},
		{"missing-rate", 0, "crash", true, "-faults"},
		{"rate-above-one", 0, "crash:1.5", true, "-faults"},
		{"negative-rate", 0, "crash:-0.1", true, "-faults"},
		{"trailing-comma-tolerated", 0, "crash:0.1,", true, ""},
		{"space-separated", 0, "crash:0.1 drop:0.1", true, "-faults"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.speculation, tc.faults, tc.budgets)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted speculation=%d faults=%q budgets=%v", tc.speculation, tc.faults, tc.budgets)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
