// Diverse retrieval: a k-diversity (remote-edge) application.
//
// A search backend has shortlisted a few thousand candidate documents,
// each represented by an embedding vector, and must present k results
// that are as mutually different as possible — maximize the minimum
// pairwise angular distance. That is k-diversity maximization in the
// angular metric. The shortlist is sharded across backend workers, so
// the paper's (2+ε)-approximation MPC algorithm fits the deployment
// shape directly.
//
// The example synthesizes embeddings drawn from a handful of latent
// topics, runs the MPC algorithm, and compares it against the prior
// 6-approximation composable-coreset baseline: the diversity achieved
// and the number of distinct topics covered.
//
//	go run ./examples/diverse-retrieval
package main

import (
	"fmt"
	"log"
	"math"

	"parclust/internal/baselines"
	"parclust/internal/diversity"
	"parclust/internal/instance"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/workload"
)

const (
	dim    = 16
	topics = 12
	nDocs  = 3000
	k      = 10
)

// synthesize returns unit-ish embedding vectors clustered around `topics`
// random directions, plus each document's true topic for reporting. Like
// real embedding tables the vectors are float32 end-to-end: they are
// generated into one contiguous float32 buffer and wrapped with
// metric.FromFlat32, so every batch kernel downstream runs on the f32
// lane with no per-point copies.
func synthesize(r *rng.RNG) (*metric.PointSet, []int) {
	centers := make([]metric.Point, topics)
	for i := range centers {
		c := make(metric.Point, dim)
		for j := range c {
			c[j] = r.NormFloat64()
		}
		centers[i] = c
	}
	emb := make([]float32, nDocs*dim)
	labels := make([]int, nDocs)
	for i := 0; i < nDocs; i++ {
		t := r.Intn(topics)
		labels[i] = t
		row := emb[i*dim : (i+1)*dim]
		for j := range row {
			row[j] = float32(centers[t][j] + 0.15*r.NormFloat64())
		}
	}
	return metric.FromFlat32(emb, dim), labels
}

func topicsCovered(selected []int, labels []int) int {
	seen := map[int]bool{}
	for _, id := range selected {
		seen[labels[id]] = true
	}
	return len(seen)
}

func main() {
	r := rng.New(1234)
	docSet, labels := synthesize(r)
	docs := docSet.Points()

	const machines = 6
	parts := workload.PartitionRoundRobin(nil, docs, machines)
	in := instance.New(metric.Angular{}, parts)
	fmt.Printf("embeddings: %d×%d float32, kernel lane %s\n\n", docSet.Len(), docSet.Dim(), docSet.Lane())

	cluster := mpc.NewCluster(machines, 5)
	ours, err := diversity.Maximize(cluster, in, diversity.Config{K: k, Eps: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	base := mpc.NewCluster(machines, 5)
	indyk, err := baselines.IndykDiversity(base, in, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("selecting %d diverse results from %d candidates (%d latent topics)\n\n",
		k, nDocs, topics)
	fmt.Printf("paper's (2+ε)-approx : min pairwise angle %6.2f°, topics covered %d/%d\n",
		ours.Diversity*180/math.Pi, topicsCovered(ours.IDs, labels), min(k, topics))
	fmt.Printf("6-approx coreset     : min pairwise angle %6.2f°, topics covered %d/%d\n",
		indyk.Diversity*180/math.Pi, topicsCovered(indyk.IDs, labels), min(k, topics))

	st := cluster.Stats()
	fmt.Printf("\nsimulated MPC: %d rounds, bottleneck %d words/machine/round\n",
		st.Rounds, st.MaxRoundComm())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
