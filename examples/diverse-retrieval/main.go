// Diverse retrieval: a k-diversity (remote-edge) application.
//
// A search backend has shortlisted a few thousand candidate documents,
// each represented by an embedding vector, and must present k results
// that are as mutually different as possible — maximize the minimum
// pairwise angular distance. That is k-diversity maximization in the
// angular metric. The shortlist is sharded across backend workers, so
// the paper's (2+ε)-approximation MPC algorithm fits the deployment
// shape directly.
//
// The example synthesizes embeddings drawn from a handful of latent
// topics, runs the MPC algorithm, and compares it against the prior
// 6-approximation composable-coreset baseline: the diversity achieved
// and the number of distinct topics covered.
//
//	go run ./examples/diverse-retrieval
package main

import (
	"fmt"
	"log"
	"math"

	"parclust/internal/baselines"
	"parclust/internal/diversity"
	"parclust/internal/instance"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/workload"
)

const (
	dim    = 16
	topics = 12
	nDocs  = 3000
	k      = 10
)

// synthesize returns unit-ish embedding vectors clustered around `topics`
// random directions, plus each document's true topic for reporting.
func synthesize(r *rng.RNG) ([]metric.Point, []int) {
	centers := make([]metric.Point, topics)
	for i := range centers {
		c := make(metric.Point, dim)
		for j := range c {
			c[j] = r.NormFloat64()
		}
		centers[i] = c
	}
	docs := make([]metric.Point, nDocs)
	labels := make([]int, nDocs)
	for i := range docs {
		t := r.Intn(topics)
		labels[i] = t
		d := make(metric.Point, dim)
		for j := range d {
			d[j] = centers[t][j] + 0.15*r.NormFloat64()
		}
		docs[i] = d
	}
	return docs, labels
}

func topicsCovered(selected []int, labels []int) int {
	seen := map[int]bool{}
	for _, id := range selected {
		seen[labels[id]] = true
	}
	return len(seen)
}

func main() {
	r := rng.New(1234)
	docs, labels := synthesize(r)

	const machines = 6
	parts := workload.PartitionRoundRobin(nil, docs, machines)
	in := instance.New(metric.Angular{}, parts)

	cluster := mpc.NewCluster(machines, 5)
	ours, err := diversity.Maximize(cluster, in, diversity.Config{K: k, Eps: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	base := mpc.NewCluster(machines, 5)
	indyk, err := baselines.IndykDiversity(base, in, k)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("selecting %d diverse results from %d candidates (%d latent topics)\n\n",
		k, nDocs, topics)
	fmt.Printf("paper's (2+ε)-approx : min pairwise angle %6.2f°, topics covered %d/%d\n",
		ours.Diversity*180/math.Pi, topicsCovered(ours.IDs, labels), min(k, topics))
	fmt.Printf("6-approx coreset     : min pairwise angle %6.2f°, topics covered %d/%d\n",
		indyk.Diversity*180/math.Pi, topicsCovered(indyk.IDs, labels), min(k, topics))

	st := cluster.Stats()
	fmt.Printf("\nsimulated MPC: %d rounds, bottleneck %d words/machine/round\n",
		st.Rounds, st.MaxRoundComm())
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
