// Sensor placement: a k-center application.
//
// A field is instrumented with hundreds of scattered sensors; we must
// choose k of them to host gateway radios so that every sensor can reach
// its nearest gateway with the weakest possible transmitter — i.e.,
// minimize the maximum sensor-to-gateway distance. That is exactly metric
// k-center, and the sensors' coordinate logs are too large for one
// machine, so the MPC algorithm runs over a simulated cluster.
//
// The example compares the paper's (2+ε)-approximation against the prior
// 4-approximation coreset baseline and against the certified lower bound,
// then prints the per-gateway assignment counts.
//
//	go run ./examples/sensor-placement
package main

import (
	"fmt"
	"log"

	"parclust/internal/baselines"
	"parclust/internal/instance"
	"parclust/internal/kcenter"
	"parclust/internal/kdtree"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/seq"
	"parclust/internal/workload"
)

func main() {
	// Sensors cluster around 8 points of interest (buildings, ponds, …)
	// with stragglers in between.
	r := rng.New(2024)
	dense := workload.GaussianMixture(r, 900, 2, 8, 2000, 15)
	stragglers := workload.UniformCube(r, 100, 2, 2000)
	sensors := append(dense, stragglers...)

	const machines = 8
	const k = 8
	parts := workload.PartitionRandom(r, sensors, machines)
	in := instance.New(metric.L2{}, parts)

	cluster := mpc.NewCluster(machines, 99)
	ours, err := kcenter.Solve(cluster, in, kcenter.Config{K: k, Eps: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	base := mpc.NewCluster(machines, 99)
	malk, err := baselines.MalkomesKCenter(base, in, k)
	if err != nil {
		log.Fatal(err)
	}

	lb := seq.KCenterLowerBound(metric.L2{}, sensors, k)
	fmt.Printf("placing %d gateways among %d sensors\n\n", k, len(sensors))
	fmt.Printf("certified lower bound on any solution : %8.2f m\n", lb)
	fmt.Printf("paper's (2+ε)-approx MPC radius       : %8.2f m\n", ours.Radius)
	fmt.Printf("prior 4-approx coreset baseline radius: %8.2f m\n", malk.Radius)

	// Assign each sensor to its nearest gateway and report loads, using
	// the k-d tree index for the many nearest-neighbor lookups.
	tree := kdtree.Build(ours.Centers)
	counts := make([]int, len(ours.Centers))
	for _, s := range sensors {
		best, _ := tree.Nearest(s)
		counts[best]++
	}
	fmt.Println("\ngateway loads (sensors per gateway):")
	for i, c := range ours.Centers {
		fmt.Printf("  gateway %d at (%7.1f, %7.1f): %3d sensors\n", i, c[0], c[1], counts[i])
	}

	st := cluster.Stats()
	fmt.Printf("\nsimulated MPC: %d rounds, bottleneck %d words/machine/round\n",
		st.Rounds, st.MaxRoundComm())
}
