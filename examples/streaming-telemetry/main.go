// Streaming telemetry: one-pass k-center with O(k) memory.
//
// A collector receives telemetry points one at a time and can keep only a
// handful in memory, yet must maintain k representative "profile" centers
// such that every event seen so far is close to one — the incremental
// k-center problem. The doubling algorithm (internal/streaming) maintains
// an 8-approximation; this example feeds a drifting workload (clusters
// appear over time) and prints how the phase radius R and the centers
// evolve, then compares the final result with the offline MPC algorithm
// that sees all points at once.
//
//	go run ./examples/streaming-telemetry
package main

import (
	"fmt"
	"log"

	"parclust/internal/instance"
	"parclust/internal/kcenter"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/streaming"
	"parclust/internal/workload"
)

func main() {
	r := rng.New(2718)
	const k = 5

	// The stream drifts: each fifth of it comes from one new region.
	regions := []metric.Point{{0, 0}, {5000, 0}, {0, 5000}, {5000, 5000}, {2500, 2500}}
	var all []metric.Point
	s := streaming.New(metric.L2{}, k)

	fmt.Printf("%-8s %-10s %-12s %s\n", "events", "centers", "R", "certified radius 8R")
	for phase, ctr := range regions {
		for i := 0; i < 800; i++ {
			p := metric.Point{ctr[0] + 30*r.NormFloat64(), ctr[1] + 30*r.NormFloat64()}
			all = append(all, p)
			s.Add(p)
		}
		fmt.Printf("%-8d %-10d %-12.1f %.1f\n",
			s.Seen(), s.NumCenters(), s.R(), s.RadiusBound())
		_ = phase
	}

	streamRadius := metric.Radius(metric.L2{}, all, s.Centers())
	fmt.Printf("\nfinal one-pass radius (measured): %.1f (certified ≤ %.1f)\n",
		streamRadius, s.RadiusBound())

	// Offline comparison: the MPC algorithm sees the whole dataset.
	const machines = 4
	in := instance.New(metric.L2{}, workload.PartitionRandom(r, all, machines))
	c := mpc.NewCluster(machines, 1)
	off, err := kcenter.Solve(c, in, kcenter.Config{K: k, Eps: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline (2+ε) MPC radius        : %.1f\n", off.Radius)
	fmt.Printf("stream memory footprint         : %d points (vs %d in the full set)\n",
		s.NumCenters(), len(all))
}
