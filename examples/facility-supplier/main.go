// Facility placement: a k-supplier application.
//
// A delivery company has a map of customer addresses and a separate list
// of candidate depot sites (zoning restricts where depots may open). It
// can afford k depots and wants every customer as close as possible to
// one — minimize the maximum customer-to-depot distance over the chosen
// k sites. Centers must come from the candidate list, not from the
// customer set: that is the k-supplier problem, for which 3 is the best
// possible factor and the paper's MPC algorithm achieves 3+ε.
//
//	go run ./examples/facility-supplier
package main

import (
	"fmt"
	"log"

	"parclust/internal/instance"
	"parclust/internal/ksupplier"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/seq"
	"parclust/internal/workload"
)

func main() {
	r := rng.New(77)

	// Customers concentrate in 6 towns; candidate depots sit along a
	// sparser grid of industrial lots (not inside the towns).
	customers := workload.GaussianMixture(r, 2000, 2, 6, 5000, 40)
	var sites []metric.Point
	for x := 0.0; x <= 5000; x += 250 {
		for y := 0.0; y <= 5000; y += 250 {
			// jitter so no site coincides with a town center
			sites = append(sites, metric.Point{x + 30*r.NormFloat64(), y + 30*r.NormFloat64()})
		}
	}

	const machines = 8
	const k = 6
	inC := instance.New(metric.L2{}, workload.PartitionRandom(r, customers, machines))
	inS := instance.New(metric.L2{}, workload.PartitionRandom(r, sites, machines))

	cluster := mpc.NewCluster(machines, 3)
	res, err := ksupplier.Solve(cluster, inC, inS, ksupplier.Config{K: k, Eps: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	lb := seq.KSupplierLowerBound(metric.L2{}, customers, k)
	fmt.Printf("opening %d of %d candidate depots for %d customers\n\n",
		k, len(sites), len(customers))
	fmt.Printf("certified lower bound         : %8.1f m\n", lb)
	fmt.Printf("(3+ε)-approx MPC radius       : %8.1f m (certified ≤ %.1f)\n",
		res.Radius, res.RadiusBound)

	fmt.Println("\nopened depots:")
	for i, s := range res.Suppliers {
		fmt.Printf("  depot %d at (%7.1f, %7.1f)\n", i, s[0], s[1])
	}

	st := cluster.Stats()
	fmt.Printf("\nsimulated MPC: %d rounds, bottleneck %d words/machine/round\n",
		st.Rounds, st.MaxRoundComm())
}
