// Noisy clustering: k-center with outliers.
//
// Telemetry data is mostly well-clustered, but a handful of corrupt
// records land arbitrarily far away. Plain k-center must cover *every*
// point, so a single corrupt record can blow the covering radius by
// orders of magnitude; the outliers variant may ignore up to z points
// and stays at the true cluster scale. This example plants corrupt
// records and shows both behaviours side by side, on the same simulated
// MPC cluster.
//
//	go run ./examples/noisy-clustering
package main

import (
	"fmt"
	"log"

	"parclust/internal/instance"
	"parclust/internal/kcenter"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/outliers"
	"parclust/internal/rng"
	"parclust/internal/workload"
)

func main() {
	r := rng.New(99)

	// 1000 telemetry points in 5 tight clusters ...
	points := workload.GaussianMixture(r, 1000, 2, 5, 500, 2)
	// ... plus 8 corrupt records ~6 orders of magnitude away.
	const corrupt = 8
	for i := 0; i < corrupt; i++ {
		points = append(points, metric.Point{
			2e6 + 1e5*r.NormFloat64(),
			-3e6 + 1e5*r.NormFloat64(),
		})
	}

	const machines = 5
	const k = 5
	in := instance.New(metric.L2{}, workload.PartitionRandom(r, points, machines))

	plainCluster := mpc.NewCluster(machines, 7)
	plain, err := kcenter.Solve(plainCluster, in, kcenter.Config{K: k, Eps: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	robustCluster := mpc.NewCluster(machines, 7)
	robust, err := outliers.MPC(robustCluster, in, k, corrupt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d points in 5 clusters, %d corrupt records planted far away\n\n",
		len(points)-corrupt, corrupt)
	fmt.Printf("plain (2+ε) k-center radius      : %12.1f   <- wrecked by noise\n", plain.Radius)
	fmt.Printf("outlier-aware (k, z=%d) radius    : %12.1f   <- cluster scale\n",
		corrupt, robust.Radius)
	fmt.Printf("\nimprovement factor: %.0fx\n", plain.Radius/robust.Radius)

	st := robustCluster.Stats()
	fmt.Printf("outlier run: %d MPC rounds, coreset of %d weighted points at the coordinator\n",
		st.Rounds, robust.CoresetSize)
}
