// Quickstart: the smallest end-to-end use of the library.
//
// It generates a little 2-D dataset with three obvious clusters,
// distributes it over a simulated 4-machine MPC cluster, runs the
// paper's (2+ε)-approximation k-center algorithm, and prints the chosen
// centers together with the simulator's round and communication
// accounting.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parclust/internal/instance"
	"parclust/internal/kcenter"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/workload"
)

func main() {
	// Three Gaussian blobs, 600 points, far apart.
	r := rng.New(7)
	points := workload.GaussianMixture(r, 600, 2, 3, 1000, 5)

	// Partition the data over 4 simulated machines, as a real MPC job
	// would receive it.
	const machines = 4
	parts := workload.PartitionRandom(r, points, machines)
	in := instance.New(metric.L2{}, parts)

	// Run the (2+ε)-approximation MPC k-center algorithm with k = 3.
	cluster := mpc.NewCluster(machines, 42)
	res, err := kcenter.Solve(cluster, in, kcenter.Config{K: 3, Eps: 0.1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("k-center, k=3, ε=0.1")
	for i, c := range res.Centers {
		fmt.Printf("  center %d: (%.1f, %.1f)\n", i, c[0], c[1])
	}
	fmt.Printf("covering radius: %.2f (certified ≤ %.2f)\n", res.Radius, res.RadiusBound)

	st := cluster.Stats()
	fmt.Printf("MPC rounds: %d, max per-machine round communication: %d words\n",
		st.Rounds, st.MaxRoundComm())
}
