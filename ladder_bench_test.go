package parclust

import (
	"runtime"
	"testing"

	"parclust/internal/instance"
	"parclust/internal/kcenter"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/workload"
)

// ladderInstance is the macro-benchmark workload behind BENCH_pr3.json:
// 1536 Gaussian points in 8 dimensions over 8 machines, k-center with
// k = 16 — large enough that the O(log 1/ε) ladder's repeated threshold
// scans dominate a Solve call.
func ladderInstance() *instance.Instance {
	r := rng.New(7)
	pts := workload.GaussianMixture(r, 1536, 8, 24, 100, 4)
	parts := workload.PartitionRoundRobin(nil, pts, 8)
	return instance.New(metric.L2{}, parts)
}

func benchLadder(b *testing.B, disable bool, speculation int) {
	in := ladderInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(in.Machines(), 42)
		res, err := kcenter.Solve(c, in, kcenter.Config{
			K: 16, DisableProbeIndex: disable, Speculation: speculation,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Centers) == 0 {
			b.Fatal("no centers")
		}
	}
}

// BenchmarkLadderProbes measures a full kcenter.Solve with the probe
// index on (the default) — the headline number for the probe
// acceleration layer.
func BenchmarkLadderProbes(b *testing.B) { benchLadder(b, false, 0) }

// BenchmarkLadderProbesUncached is the same workload with the index
// disabled: the before/after pair for docs/PERFORMANCE.md.
func BenchmarkLadderProbesUncached(b *testing.B) { benchLadder(b, true, 0) }

// BenchmarkLadderWaves is the speculative-search headline: the same
// workload with the wave width tied to GOMAXPROCS, so a -cpu 1,2,4,8
// sweep scales the speculation with the cores available to absorb it.
// At -cpu 1 the wave runs its forks on one core — the sequential probe
// work plus pure speculation overhead — which bounds the scheme's
// cost floor; wall-clock gains over BenchmarkLadderProbes appear only
// with real parallelism (wave-depth model in docs/PERFORMANCE.md).
func BenchmarkLadderWaves(b *testing.B) { benchLadder(b, false, runtime.GOMAXPROCS(0)) }
