package parclust

import (
	"runtime"
	"sort"
	"testing"

	"parclust/internal/instance"
	"parclust/internal/kcenter"
	"parclust/internal/metric"
	"parclust/internal/mpc"
	"parclust/internal/rng"
	"parclust/internal/sched"
	"parclust/internal/workload"
)

// ladderInstance is the macro-benchmark workload behind BENCH_pr3.json:
// 1536 Gaussian points in 8 dimensions over 8 machines, k-center with
// k = 16 — large enough that the O(log 1/ε) ladder's repeated threshold
// scans dominate a Solve call.
func ladderInstance() *instance.Instance {
	r := rng.New(7)
	pts := workload.GaussianMixture(r, 1536, 8, 24, 100, 4)
	parts := workload.PartitionRoundRobin(nil, pts, 8)
	return instance.New(metric.L2{}, parts)
}

func benchLadder(b *testing.B, disable bool, speculation int) {
	in := ladderInstance()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := mpc.NewCluster(in.Machines(), 42)
		res, err := kcenter.Solve(c, in, kcenter.Config{
			K: 16, DisableProbeIndex: disable, Speculation: speculation,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Centers) == 0 {
			b.Fatal("no centers")
		}
	}
}

// BenchmarkLadderProbes measures a full kcenter.Solve with the probe
// index on (the default) — the headline number for the probe
// acceleration layer.
func BenchmarkLadderProbes(b *testing.B) { benchLadder(b, false, 0) }

// BenchmarkLadderProbesUncached is the same workload with the index
// disabled: the before/after pair for docs/PERFORMANCE.md.
func BenchmarkLadderProbesUncached(b *testing.B) { benchLadder(b, true, 0) }

// benchLadderWaves runs the wave workload with a trace recorder and
// reports, besides ns/op, the winning-path probe latency percentiles:
// the per-probe wall time of the rungs the search kept (speculative and
// recovery rounds excluded), which is exactly the quantity the adaptive
// scheduler's cost model estimates online. A probe's latency is the sum
// of WallNanos over its forked rung's non-speculative rounds; width-0
// runs fork nothing, so they report ns/op only. An adaptive run
// (speculation == sched.Adaptive) shares one scheduler across the b.N
// iterations — cold on the first Solve, warm after, the serving shape.
func benchLadderWaves(b *testing.B, in *instance.Instance, disable bool, speculation int) {
	var sch *sched.Scheduler
	if speculation == sched.Adaptive {
		// Production defaults on purpose: the pool and the parallelism
		// ceiling come from min(GOMAXPROCS, NumCPU), so a -cpu sweep on a
		// single-core host shows adaptive (correctly) refusing to
		// speculate rather than timesharing wide waves on one core.
		sch = sched.NewScheduler(sched.Config{})
	}
	var probeNs []int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := mpc.NewTraceRecorder()
		c := mpc.NewCluster(in.Machines(), 42, mpc.WithRecorder(rec))
		res, err := kcenter.Solve(c, in, kcenter.Config{
			K: 16, DisableProbeIndex: disable, Speculation: speculation, Sched: sch,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Centers) == 0 {
			b.Fatal("no centers")
		}
		perRung := map[int]int64{}
		for _, ev := range rec.Events() {
			if ev.ForkRung == nil || ev.Speculative || ev.Recovery {
				continue
			}
			perRung[*ev.ForkRung] += ev.WallNanos
		}
		for _, ns := range perRung {
			probeNs = append(probeNs, ns)
		}
	}
	b.StopTimer()
	if len(probeNs) > 0 {
		b.ReportMetric(percentileNs(probeNs, 50), "p50-probe-ns")
		b.ReportMetric(percentileNs(probeNs, 95), "p95-probe-ns")
	}
}

// percentileNs returns the p-th percentile (nearest-rank) of samples.
func percentileNs(samples []int64, p int) float64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := (len(samples)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return float64(samples[idx])
}

// BenchmarkLadderWaves is the speculative-search headline: the same
// workload with the wave width tied to GOMAXPROCS, so a -cpu 1,2,4,8
// sweep scales the speculation with the cores available to absorb it.
// At -cpu 1 the wave runs its forks on one core — the sequential probe
// work plus pure speculation overhead — which bounds the scheme's
// cost floor; wall-clock gains over BenchmarkLadderProbes appear only
// with real parallelism (wave-depth model in docs/PERFORMANCE.md).
func BenchmarkLadderWaves(b *testing.B) {
	benchLadderWaves(b, ladderInstance(), false, runtime.GOMAXPROCS(0))
}

// BenchmarkLadderWidths sweeps fixed wave widths against the adaptive
// scheduler on the dim-8 ladder — the BENCH_pr8.json matrix. Crossed
// with -cpu 1,2,4,8 it exposes the regime the cost model navigates:
// fixed width 8 pays pure overhead on one core while adaptive converges
// to width 1 there, and on idle cores adaptive should track the best
// fixed width.
func BenchmarkLadderWidths(b *testing.B) {
	in := ladderInstance()
	for _, w := range []struct {
		name  string
		width int
	}{
		{"w0", 0}, {"w1", 1}, {"w2", 2}, {"w4", 4}, {"w8", 8},
		{"adaptive", sched.Adaptive},
	} {
		b.Run(w.name, func(b *testing.B) { benchLadderWaves(b, in, false, w.width) })
	}
}
